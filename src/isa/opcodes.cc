#include "isa/opcodes.hh"

#include <array>
#include <map>

#include "common/logging.hh"

namespace liquid
{

namespace
{

using Op = Opcode;

constexpr OpInfo
dp(const char *name, unsigned lat, Op vec, Op red = Op::Nop)
{
    return OpInfo{name, false, false, false, false, true, false, false,
                  0, false, lat, vec, red, Op::Nop};
}

constexpr OpInfo
vdp(const char *name, unsigned lat, Op scalar)
{
    return OpInfo{name, false, false, false, true, true, false, false,
                  0, false, lat, Op::Nop, Op::Nop, scalar};
}

constexpr OpInfo
vred(const char *name, Op scalar)
{
    return OpInfo{name, false, false, false, true, true, true, false,
                  0, false, 1, Op::Nop, Op::Nop, scalar};
}

constexpr OpInfo
ld(const char *name, unsigned size, bool sgn, bool vec, Op other)
{
    OpInfo info{name, true, false, false, vec, false, false, false,
                size, sgn, 0, Op::Nop, Op::Nop, Op::Nop};
    if (vec)
        info.scalarEquiv = other;
    else
        info.vectorEquiv = other;
    return info;
}

constexpr OpInfo
st(const char *name, unsigned size, bool vec, Op other)
{
    OpInfo info{name, false, true, false, vec, false, false, false,
                size, false, 0, Op::Nop, Op::Nop, Op::Nop};
    if (vec)
        info.scalarEquiv = other;
    else
        info.vectorEquiv = other;
    return info;
}

constexpr std::array<OpInfo, static_cast<std::size_t>(Op::NumOpcodes)>
buildTable()
{
    std::array<OpInfo, static_cast<std::size_t>(Op::NumOpcodes)> t{};
    auto set = [&t](Op op, OpInfo info) {
        t[static_cast<std::size_t>(op)] = info;
    };

    set(Op::Nop, OpInfo{"nop", false, false, false, false, false, false,
                        false, 0, false, 0, Op::Nop, Op::Nop, Op::Nop});
    set(Op::Halt, OpInfo{"halt", false, false, false, false, false, false,
                         false, 0, false, 0, Op::Nop, Op::Nop, Op::Nop});

    // Scalar data processing. Latencies: single-cycle ALU, mul takes one
    // extra (ARM9 short multiply); float handled by the execute stage,
    // which adds class-dependent latency on top.
    set(Op::Mov, dp("mov", 0, Op::Nop));
    set(Op::Add, dp("add", 0, Op::Vadd));
    set(Op::Sub, dp("sub", 0, Op::Vsub));
    set(Op::Rsb, dp("rsb", 0, Op::Vrsb));
    set(Op::Mul, dp("mul", 1, Op::Vmul));
    set(Op::And, dp("and", 0, Op::Vand));
    set(Op::Orr, dp("orr", 0, Op::Vorr));
    set(Op::Eor, dp("eor", 0, Op::Veor));
    set(Op::Bic, dp("bic", 0, Op::Vbic));
    set(Op::Lsl, dp("lsl", 0, Op::Vlsl));
    set(Op::Lsr, dp("lsr", 0, Op::Vlsr));
    set(Op::Asr, dp("asr", 0, Op::Vasr));
    set(Op::Min, dp("min", 0, Op::Vmin, Op::Vredmin));
    set(Op::Max, dp("max", 0, Op::Vmax, Op::Vredmax));
    set(Op::Qadd, dp("qadd", 0, Op::Vqadd));
    set(Op::Qsub, dp("qsub", 0, Op::Vqsub));
    // Add doubles as the reduction carrier for sums.
    t[static_cast<std::size_t>(Op::Add)].reductionEquiv = Op::Vredadd;

    OpInfo cmp = dp("cmp", 0, Op::Nop);
    cmp.setsFlags = true;
    set(Op::Cmp, cmp);

    set(Op::B, OpInfo{"b", false, false, true, false, false, false, false,
                      0, false, 0, Op::Nop, Op::Nop, Op::Nop});
    set(Op::Bl, OpInfo{"bl", false, false, true, false, false, false,
                       false, 0, false, 0, Op::Nop, Op::Nop, Op::Nop});
    set(Op::Ret, OpInfo{"ret", false, false, true, false, false, false,
                        false, 0, false, 0, Op::Nop, Op::Nop, Op::Nop});

    set(Op::Ldb, ld("ldb", 1, false, false, Op::Vldb));
    set(Op::Ldsb, ld("ldsb", 1, true, false, Op::Vldsb));
    set(Op::Ldh, ld("ldh", 2, false, false, Op::Vldh));
    set(Op::Ldsh, ld("ldsh", 2, true, false, Op::Vldsh));
    set(Op::Ldw, ld("ldw", 4, false, false, Op::Vldw));
    set(Op::Stb, st("stb", 1, false, Op::Vstb));
    set(Op::Sth, st("sth", 2, false, Op::Vsth));
    set(Op::Stw, st("stw", 4, false, Op::Vstw));

    set(Op::Vadd, vdp("vadd", 0, Op::Add));
    set(Op::Vsub, vdp("vsub", 0, Op::Sub));
    set(Op::Vrsb, vdp("vrsb", 0, Op::Rsb));
    set(Op::Vmul, vdp("vmul", 1, Op::Mul));
    set(Op::Vand, vdp("vand", 0, Op::And));
    set(Op::Vorr, vdp("vorr", 0, Op::Orr));
    set(Op::Veor, vdp("veor", 0, Op::Eor));
    set(Op::Vbic, vdp("vbic", 0, Op::Bic));
    set(Op::Vlsl, vdp("vlsl", 0, Op::Lsl));
    set(Op::Vlsr, vdp("vlsr", 0, Op::Lsr));
    set(Op::Vasr, vdp("vasr", 0, Op::Asr));
    set(Op::Vmin, vdp("vmin", 0, Op::Min));
    set(Op::Vmax, vdp("vmax", 0, Op::Max));
    set(Op::Vqadd, vdp("vqadd", 0, Op::Qadd));
    set(Op::Vqsub, vdp("vqsub", 0, Op::Qsub));
    set(Op::Vmask, vdp("vmask", 0, Op::And));
    set(Op::Vperm, vdp("vperm", 0, Op::Nop));
    set(Op::Vredmin, vred("vredmin", Op::Min));
    set(Op::Vredmax, vred("vredmax", Op::Max));
    set(Op::Vredadd, vred("vredadd", Op::Add));

    set(Op::Vldb, ld("vldb", 1, false, true, Op::Ldb));
    set(Op::Vldsb, ld("vldsb", 1, true, true, Op::Ldsb));
    set(Op::Vldh, ld("vldh", 2, false, true, Op::Ldh));
    set(Op::Vldsh, ld("vldsh", 2, true, true, Op::Ldsh));
    set(Op::Vldw, ld("vldw", 4, false, true, Op::Ldw));
    set(Op::Vstb, st("vstb", 1, true, Op::Stb));
    set(Op::Vsth, st("vsth", 2, true, Op::Sth));
    set(Op::Vstw, st("vstw", 4, true, Op::Stw));

    // Fix vector load signedness flags (the ld() helper already set them
    // from its arguments; nothing further needed).
    return t;
}

const auto opTable = buildTable();

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    LIQUID_ASSERT(op < Opcode::NumOpcodes);
    return opTable[static_cast<std::size_t>(op)];
}

const char *
condName(Cond cond)
{
    switch (cond) {
      case Cond::AL: return "";
      case Cond::EQ: return "eq";
      case Cond::NE: return "ne";
      case Cond::LT: return "lt";
      case Cond::LE: return "le";
      case Cond::GT: return "gt";
      case Cond::GE: return "ge";
    }
    return "";
}

Opcode
parseOpcodeName(const std::string &name)
{
    static const std::map<std::string, Opcode> byName = [] {
        std::map<std::string, Opcode> m;
        for (unsigned i = 0;
             i < static_cast<unsigned>(Opcode::NumOpcodes); ++i) {
            const auto op = static_cast<Opcode>(i);
            m[opInfo(op).name] = op;
        }
        return m;
    }();
    auto it = byName.find(name);
    return it == byName.end() ? Opcode::NumOpcodes : it->second;
}

DecodeClass
partialDecode(Opcode op)
{
    const OpInfo &info = opInfo(op);
    if (info.isVector)
        return DecodeClass::Vector;
    switch (op) {
      case Opcode::Bl: return DecodeClass::Call;
      case Opcode::Ret: return DecodeClass::Return;
      case Opcode::Mov: return DecodeClass::Mov;
      case Opcode::Cmp: return DecodeClass::Cmp;
      case Opcode::B: return DecodeClass::Branch;
      default: break;
    }
    if (info.isLoad)
        return DecodeClass::Load;
    if (info.isStore)
        return DecodeClass::Store;
    if (info.isDataProc)
        return DecodeClass::DataProc;
    return DecodeClass::Untranslatable;  // nop, halt
}

bool
parseCondName(const std::string &name, Cond &out)
{
    static const std::map<std::string, Cond> byName = {
        {"", Cond::AL}, {"al", Cond::AL}, {"eq", Cond::EQ},
        {"ne", Cond::NE}, {"lt", Cond::LT}, {"le", Cond::LE},
        {"gt", Cond::GT}, {"ge", Cond::GE},
    };
    auto it = byName.find(name);
    if (it == byName.end())
        return false;
    out = it->second;
    return true;
}

} // namespace liquid
