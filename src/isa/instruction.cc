#include "isa/instruction.hh"

#include <sstream>

#include "common/logging.hh"

namespace liquid
{

bool
Inst::operator==(const Inst &o) const
{
    return op == o.op && cond == o.cond && dst == o.dst &&
           src1 == o.src1 && src2 == o.src2 && hasImm == o.hasImm &&
           (!hasImm || imm == o.imm) && (!isMem() || mem == o.mem) &&
           (!isBranch() || target == o.target) && hinted == o.hinted &&
           permKind == o.permKind && permBlock == o.permBlock &&
           maskBits == o.maskBits && maskBlock == o.maskBlock &&
           cvec == o.cvec;
}

namespace
{

std::string
memString(const Inst &inst)
{
    std::ostringstream os;
    os << '[';
    if (!inst.mem.baseSym.empty())
        os << inst.mem.baseSym;
    else
        os << "0x" << std::hex << inst.mem.base << std::dec;
    if (inst.mem.index.isValid())
        os << " + " << regName(inst.mem.index);
    if (inst.mem.disp != 0)
        os << " + #" << inst.mem.disp;
    os << ']';
    return os.str();
}

} // namespace

std::string
Inst::toString() const
{
    std::ostringstream os;
    const OpInfo &i = info();
    os << i.name << condName(cond);

    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Ret:
        return os.str();
      case Opcode::B:
        os << ' ' << (targetSym.empty() ? std::to_string(target)
                                        : targetSym);
        return os.str();
      case Opcode::Bl:
        if (hinted) {
            os << ".simd";
            if (blWidthHint)
                os << static_cast<unsigned>(blWidthHint);
        }
        os << ' '
           << (targetSym.empty() ? std::to_string(target) : targetSym);
        return os.str();
      case Opcode::Cmp:
        os << ' ' << regName(src1) << ", ";
        if (hasImm)
            os << '#' << imm;
        else
            os << regName(src2);
        return os.str();
      case Opcode::Vperm:
        os << '.' << permKindName(permKind)
           << static_cast<unsigned>(permBlock) << ' ' << regName(dst)
           << ", " << regName(src1);
        return os.str();
      case Opcode::Vmask:
        os << ' ' << regName(dst) << ", " << regName(src1) << ", #0x"
           << std::hex << maskBits << std::dec << '/'
           << static_cast<unsigned>(maskBlock);
        return os.str();
      default:
        break;
    }

    if (i.isLoad) {
        os << ' ' << regName(dst) << ", " << memString(*this);
        return os.str();
    }
    if (i.isStore) {
        os << ' ' << memString(*this) << ", " << regName(src1);
        return os.str();
    }

    // Reductions fold into the destination: print the paper's
    // two-operand form.
    if (i.isReduction) {
        os << ' ' << regName(dst) << ", " << regName(src2);
        return os.str();
    }

    // Data processing (incl. mov).
    os << ' ' << regName(dst);
    if (op == Opcode::Mov) {
        os << ", ";
        if (hasImm)
            os << '#' << imm;
        else
            os << regName(src1);
        return os.str();
    }
    os << ", " << regName(src1) << ", ";
    if (cvec != noCvec)
        os << "cv#" << cvec;
    else if (hasImm)
        os << '#' << imm;
    else
        os << regName(src2);
    return os.str();
}

Inst
Inst::movImm(RegId dst, std::int32_t imm, Cond cond)
{
    Inst inst;
    inst.op = Opcode::Mov;
    inst.cond = cond;
    inst.dst = dst;
    inst.hasImm = true;
    inst.imm = imm;
    return inst;
}

Inst
Inst::movReg(RegId dst, RegId src, Cond cond)
{
    Inst inst;
    inst.op = Opcode::Mov;
    inst.cond = cond;
    inst.dst = dst;
    inst.src1 = src;
    return inst;
}

Inst
Inst::dp(Opcode op, RegId dst, RegId src1, RegId src2)
{
    LIQUID_ASSERT(opInfo(op).isDataProc);
    Inst inst;
    inst.op = op;
    inst.dst = dst;
    inst.src1 = src1;
    inst.src2 = src2;
    return inst;
}

Inst
Inst::dpImm(Opcode op, RegId dst, RegId src1, std::int32_t imm)
{
    LIQUID_ASSERT(opInfo(op).isDataProc);
    Inst inst;
    inst.op = op;
    inst.dst = dst;
    inst.src1 = src1;
    inst.hasImm = true;
    inst.imm = imm;
    return inst;
}

Inst
Inst::dpCvec(Opcode op, RegId dst, RegId src1, std::uint32_t cvec_id)
{
    LIQUID_ASSERT(opInfo(op).isVector && opInfo(op).isDataProc);
    Inst inst;
    inst.op = op;
    inst.dst = dst;
    inst.src1 = src1;
    inst.cvec = cvec_id;
    return inst;
}

Inst
Inst::cmpReg(RegId src1, RegId src2)
{
    Inst inst;
    inst.op = Opcode::Cmp;
    inst.src1 = src1;
    inst.src2 = src2;
    return inst;
}

Inst
Inst::cmpImm(RegId src1, std::int32_t imm)
{
    Inst inst;
    inst.op = Opcode::Cmp;
    inst.src1 = src1;
    inst.hasImm = true;
    inst.imm = imm;
    return inst;
}

Inst
Inst::load(Opcode op, RegId dst, MemRef mem)
{
    LIQUID_ASSERT(opInfo(op).isLoad);
    Inst inst;
    inst.op = op;
    inst.dst = dst;
    inst.mem = std::move(mem);
    return inst;
}

Inst
Inst::store(Opcode op, RegId src, MemRef mem)
{
    LIQUID_ASSERT(opInfo(op).isStore);
    Inst inst;
    inst.op = op;
    inst.src1 = src;
    inst.mem = std::move(mem);
    return inst;
}

Inst
Inst::branch(Cond cond, std::int32_t target, std::string sym)
{
    Inst inst;
    inst.op = Opcode::B;
    inst.cond = cond;
    inst.target = target;
    inst.targetSym = std::move(sym);
    return inst;
}

Inst
Inst::call(std::int32_t target, bool hinted, std::string sym,
           unsigned width_hint)
{
    Inst inst;
    inst.op = Opcode::Bl;
    inst.target = target;
    inst.hinted = hinted;
    inst.targetSym = std::move(sym);
    inst.blWidthHint = static_cast<std::uint8_t>(width_hint);
    return inst;
}

Inst
Inst::ret()
{
    Inst inst;
    inst.op = Opcode::Ret;
    return inst;
}

Inst
Inst::halt()
{
    Inst inst;
    inst.op = Opcode::Halt;
    return inst;
}

Inst
Inst::nop()
{
    return Inst{};
}

Inst
Inst::vperm(RegId dst, RegId src, PermKind kind, unsigned block)
{
    Inst inst;
    inst.op = Opcode::Vperm;
    inst.dst = dst;
    inst.src1 = src;
    inst.permKind = kind;
    inst.permBlock = static_cast<std::uint8_t>(block);
    return inst;
}

Inst
Inst::vmask(RegId dst, RegId src, std::uint32_t bits, unsigned block)
{
    Inst inst;
    inst.op = Opcode::Vmask;
    inst.dst = dst;
    inst.src1 = src;
    inst.maskBits = bits;
    inst.maskBlock = static_cast<std::uint8_t>(block);
    return inst;
}

Inst
Inst::vred(Opcode op, RegId scalar_dst, RegId vec_src)
{
    LIQUID_ASSERT(opInfo(op).isReduction);
    Inst inst;
    inst.op = op;
    inst.dst = scalar_dst;
    inst.src1 = scalar_dst;
    inst.src2 = vec_src;
    return inst;
}

} // namespace liquid
