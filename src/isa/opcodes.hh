/**
 * @file
 * Opcode and condition-code definitions plus per-opcode metadata for the
 * Liquid SIMD scalar and vector instruction sets.
 */

#ifndef LIQUID_ISA_OPCODES_HH
#define LIQUID_ISA_OPCODES_HH

#include <cstdint>
#include <string>

namespace liquid
{

/**
 * Instruction opcodes. The scalar half is ARM-flavoured; the vector half
 * is Neon-flavoured. Float semantics are selected by the destination
 * register class, mirroring the paper's examples where `mult f2, f2, f0`
 * is a float multiply.
 */
enum class Opcode : std::uint8_t
{
    // --- scalar ---
    Nop,
    Halt,   ///< stop simulation (test/driver convenience)
    Mov,    ///< reg or immediate move; conditional forms build idioms
    Add,
    Sub,
    Rsb,    ///< reverse subtract: dst = src2 - src1
    Mul,
    And,
    Orr,
    Eor,
    Bic,    ///< bit clear: dst = src1 & ~src2
    Lsl,
    Lsr,
    Asr,
    Min,    ///< scalar min (also the reduction idiom carrier)
    Max,
    Qadd,   ///< scalar saturating add (signed 32-bit)
    Qsub,
    Cmp,    ///< sets flags
    B,      ///< branch, condition in Inst::cond
    Bl,     ///< branch and link (outlined-function entry marker)
    Ret,
    Ldb,    ///< zero-extending byte load, element-scaled indexing
    Ldsb,   ///< sign-extending byte load
    Ldh,
    Ldsh,
    Ldw,
    Stb,
    Sth,
    Stw,

    // --- vector ---
    Vadd,
    Vsub,
    Vrsb,
    Vmul,
    Vand,
    Vorr,
    Veor,
    Vbic,
    Vlsl,
    Vlsr,
    Vasr,
    Vmin,
    Vmax,
    Vqadd,
    Vqsub,
    Vmask,    ///< zero lanes not selected by a periodic lane mask
    Vperm,    ///< block-periodic lane permutation (butterfly etc.)
    Vredmin,  ///< dst(scalar) = min(dst, lanes of src2)
    Vredmax,
    Vredadd,
    Vldb,
    Vldsb,
    Vldh,
    Vldsh,
    Vldw,
    Vstb,
    Vsth,
    Vstw,

    NumOpcodes,
};

/** ARM-style condition codes (subset used by the representation). */
enum class Cond : std::uint8_t
{
    AL,
    EQ,
    NE,
    LT,
    LE,
    GT,
    GE,
};

/** Static metadata for one opcode. */
struct OpInfo
{
    const char *name;       ///< assembler mnemonic
    bool isLoad;
    bool isStore;
    bool isBranch;
    bool isVector;          ///< vector-ISA opcode
    bool isDataProc;        ///< register-to-register data processing
    bool isReduction;       ///< vector reduction producing a scalar
    bool setsFlags;         ///< writes condition flags
    unsigned memElemSize;   ///< 1/2/4 for memory ops, 0 otherwise
    bool memSigned;         ///< sign-extending load
    unsigned extraLatency;  ///< cycles beyond the 1-cycle base
    Opcode vectorEquiv;     ///< scalar DP op -> vector op (or Nop)
    Opcode reductionEquiv;  ///< scalar DP op -> vector reduction (or Nop)
    Opcode scalarEquiv;     ///< vector op -> scalar op (or Nop)
};

/** Metadata lookup; valid for every opcode below NumOpcodes. */
const OpInfo &opInfo(Opcode op);

/**
 * How the dynamic translator's partial decoder (paper Section 4.1)
 * dispatches an opcode. Shared by the hardware rule automaton and the
 * static verifier so both classify the repertoire identically.
 */
enum class DecodeClass : std::uint8_t
{
    Vector,          ///< vector-ISA opcode: illegal in a scalar region
    Call,            ///< bl: nested call inside a region
    Return,          ///< ret: region exit, handled off the decode path
    Untranslatable,  ///< recognized but outside the conversion rules
    Mov,
    Cmp,
    Branch,
    Load,
    Store,
    DataProc,
};

/** Classify @p op the way the partial decoder does. */
DecodeClass partialDecode(Opcode op);

/** Assembler mnemonic for @p op. */
inline const char *opName(Opcode op) { return opInfo(op).name; }

/** Mnemonic suffix for a condition ("", "eq", ...). */
const char *condName(Cond cond);

/** Parse "add", "vmin", ... Returns NumOpcodes when unknown. */
Opcode parseOpcodeName(const std::string &name);

/** Parse a condition suffix; returns AL for the empty string. */
bool parseCondName(const std::string &name, Cond &out);

} // namespace liquid

#endif // LIQUID_ISA_OPCODES_HH
