/**
 * @file
 * Block-periodic lane permutations.
 *
 * The paper encodes element-reordering SIMD instructions (butterfly etc.)
 * in the scalar representation as a read-only array of *offsets* added to
 * the loop induction variable (Table 1, categories 7/8). The dynamic
 * translator CAMs the observed offset pattern against the permutations the
 * target SIMD accelerator supports and aborts on a miss.
 *
 * A permutation here is (kind, blockSize): it permutes lanes within each
 * blockSize-lane block and repeats periodically. A width-W accelerator
 * supports it iff blockSize <= W (blocks never straddle vectors because
 * both are powers of two). This is exactly why a loop compiled around an
 * 8-element butterfly gains nothing from a 16-wide accelerator while a
 * 16-element butterfly is refused by an 8-wide one.
 */

#ifndef LIQUID_ISA_PERM_HH
#define LIQUID_ISA_PERM_HH

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

namespace liquid
{

/** Supported permutation shapes (the accelerator's shuffle repertoire). */
enum class PermKind : std::uint8_t
{
    SwapHalves,  ///< the paper's "butterfly": exchange block halves
    SwapPairs,   ///< exchange adjacent even/odd lanes
    Reverse,     ///< reverse lanes within the block
    RotUp,       ///< lane i takes element i+1 (wrapping) — vext-style
    RotDown,     ///< lane i takes element i-1 (wrapping)
    NumKinds,
};

/** Printable name for a permutation kind. */
const char *permKindName(PermKind kind);

/**
 * Source lane index within one block: a Vperm writes
 * dst[i] = src[blockBase + permSourceLane(kind, block, i % block)].
 */
unsigned permSourceLane(PermKind kind, unsigned block, unsigned lane);

/**
 * The offset array the compiler emits for this permutation: entry i (for
 * one period) is permSourceLane(i) - i, i.e. the value added to the
 * induction variable before the load. Offsets, not absolute indices,
 * keep the scalar representation width-independent (paper Section 3.2).
 */
std::vector<std::int32_t> permOffsets(PermKind kind, unsigned block);

/**
 * The translator's permutation CAM: matches an observed offset sequence
 * (one full period, starting at lane 0) against every (kind, block)
 * pattern with block <= simdWidth. Returns the match or nullopt (abort).
 */
struct PermMatch
{
    PermKind kind;
    unsigned block;
};

/** Bitmask of supported PermKinds (bit i = kind i). */
using PermRepertoire = std::uint32_t;

/** Every permutation kind: the newest accelerator generation. */
inline constexpr PermRepertoire allPerms =
    (1u << static_cast<unsigned>(PermKind::NumKinds)) - 1;

/** Convenience: a repertoire containing the given kinds. */
constexpr PermRepertoire
permSet(std::initializer_list<PermKind> kinds)
{
    PermRepertoire r = 0;
    for (const PermKind k : kinds)
        r |= 1u << static_cast<unsigned>(k);
    return r;
}

std::optional<PermMatch>
permCamLookup(const std::vector<std::int32_t> &offsets, unsigned simdWidth,
              PermRepertoire repertoire = allPerms);

} // namespace liquid

#endif // LIQUID_ISA_PERM_HH
