/**
 * @file
 * 32-bit binary encoding of the instruction set.
 *
 * The paper sizes the microcode buffer at 32 bits per instruction
 * (64 x 32 b = 256 B); this module provides a concrete encoding that
 * round-trips every instruction the assembler, scalarizer and dynamic
 * translator produce, demonstrating that the decoded Inst
 * representation carries no hidden information beyond one word plus a
 * shared literal table (for 32-bit base addresses and wide immediates
 * — the moral equivalent of a literal pool / GOT).
 *
 * Layout (op: 6 bits [31:26], cond: 3 bits [25:23]):
 *
 *   data processing  f[22:21] dst[20:15] src1[14:9] tail[8:0]
 *       f=0: tail = src2 register
 *       f=1: tail = 9-bit signed immediate
 *       f=2: tail = literal index of a wide immediate
 *       f=3: tail = constant-vector pool id
 *   memory           dst/src[22:17] index[16:11] baseLit[10:4]
 *                    disp[3:0] (signed)
 *   branch           target[22:7] (signed) hinted[6]
 *                    log2(widthHint)[5:3]
 *   vperm            dst[22:17] src[16:11] kind[10:8] log2(block)[7:5]
 *   vmask            dst[22:17] src[16:11] maskLit[10:4]
 *                    (literal packs bits<<8 | block)
 */

#ifndef LIQUID_ISA_ENCODING_HH
#define LIQUID_ISA_ENCODING_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace liquid
{

/** Shared literal pool built up during encoding. */
class LiteralPool
{
  public:
    /** Intern @p value; returns its index. fatal() past 128 entries. */
    unsigned intern(Word value);

    Word
    get(unsigned index) const
    {
        LIQUID_ASSERT(index < values_.size(), "bad literal index");
        return values_[index];
    }

    const std::vector<Word> &values() const { return values_; }

  private:
    std::vector<Word> values_;
};

/** Encode one instruction. fatal() on unencodable fields. */
std::uint32_t encodeInst(const Inst &inst, LiteralPool &pool);

/** Decode one instruction (symbols are not recoverable). */
Inst decodeInst(std::uint32_t word, const LiteralPool &pool);

/** A fully encoded code segment. */
struct EncodedProgram
{
    std::vector<std::uint32_t> words;
    LiteralPool literals;

    /** Architectural size: code words + literal pool. */
    std::size_t
    sizeBytes() const
    {
        return (words.size() + literals.values().size()) * 4;
    }
};

/** Encode a program's code segment (or any instruction sequence). */
EncodedProgram encodeProgram(const std::vector<Inst> &code);

/** Decode back to instructions. */
std::vector<Inst> decodeProgram(const EncodedProgram &encoded);

} // namespace liquid

#endif // LIQUID_ISA_ENCODING_HH
