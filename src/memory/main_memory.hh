/**
 * @file
 * Flat functional memory backing the simulated system. Timing lives in
 * the cache models and the core; this class only stores bytes.
 */

#ifndef LIQUID_MEMORY_MAIN_MEMORY_HH
#define LIQUID_MEMORY_MAIN_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace liquid
{

class Program;

/** Byte-addressable simulated memory. */
class MainMemory
{
  public:
    /** Create a memory covering [0, size) bytes. */
    explicit MainMemory(std::size_t size);

    /** Build a memory sized for @p prog and load its data image. */
    static MainMemory forProgram(const Program &prog,
                                 std::size_t slack = 1 << 16);

    /** Copy a program's static data image into place. */
    void loadProgram(const Program &prog);

    std::uint8_t readByte(Addr addr) const;
    std::uint16_t readHalf(Addr addr) const;
    Word readWord(Addr addr) const;

    void writeByte(Addr addr, std::uint8_t value);
    void writeHalf(Addr addr, std::uint16_t value);
    void writeWord(Addr addr, Word value);

    /**
     * Read one element of @p size bytes (1/2/4), zero- or sign-extended
     * into a register word.
     */
    Word readElem(Addr addr, unsigned size, bool sign_extend) const;

    /** Write the low @p size bytes of @p value. */
    void writeElem(Addr addr, unsigned size, Word value);

    std::size_t size() const { return bytes_.size(); }

  private:
    void check(Addr addr, unsigned size) const;

    std::vector<std::uint8_t> bytes_;
};

} // namespace liquid

#endif // LIQUID_MEMORY_MAIN_MEMORY_HH
