#include "memory/main_memory.hh"

#include "asm/program.hh"
#include "common/bitfield.hh"

namespace liquid
{

MainMemory::MainMemory(std::size_t size) : bytes_(size, 0)
{
}

MainMemory
MainMemory::forProgram(const Program &prog, std::size_t slack)
{
    MainMemory mem(Program::dataBase + prog.dataImage().size() + slack);
    mem.loadProgram(prog);
    return mem;
}

void
MainMemory::loadProgram(const Program &prog)
{
    const auto &image = prog.dataImage();
    LIQUID_ASSERT(Program::dataBase + image.size() <= bytes_.size(),
                  "memory too small for program data");
    for (std::size_t i = 0; i < image.size(); ++i)
        bytes_[Program::dataBase + i] = image[i];
}

void
MainMemory::check(Addr addr, unsigned size) const
{
    if (static_cast<std::size_t>(addr) + size > bytes_.size()) {
        panic("memory access out of bounds: addr=0x", std::hex, addr,
              " size=", std::dec, size, " memsize=", bytes_.size());
    }
}

std::uint8_t
MainMemory::readByte(Addr addr) const
{
    check(addr, 1);
    return bytes_[addr];
}

std::uint16_t
MainMemory::readHalf(Addr addr) const
{
    check(addr, 2);
    return static_cast<std::uint16_t>(bytes_[addr]) |
           (static_cast<std::uint16_t>(bytes_[addr + 1]) << 8);
}

Word
MainMemory::readWord(Addr addr) const
{
    check(addr, 4);
    return static_cast<Word>(bytes_[addr]) |
           (static_cast<Word>(bytes_[addr + 1]) << 8) |
           (static_cast<Word>(bytes_[addr + 2]) << 16) |
           (static_cast<Word>(bytes_[addr + 3]) << 24);
}

void
MainMemory::writeByte(Addr addr, std::uint8_t value)
{
    check(addr, 1);
    bytes_[addr] = value;
}

void
MainMemory::writeHalf(Addr addr, std::uint16_t value)
{
    writeByte(addr, static_cast<std::uint8_t>(value));
    writeByte(addr + 1, static_cast<std::uint8_t>(value >> 8));
}

void
MainMemory::writeWord(Addr addr, Word value)
{
    writeHalf(addr, static_cast<std::uint16_t>(value));
    writeHalf(addr + 2, static_cast<std::uint16_t>(value >> 16));
}

Word
MainMemory::readElem(Addr addr, unsigned size, bool sign_extend) const
{
    switch (size) {
      case 1: {
        const std::uint8_t b = readByte(addr);
        return sign_extend ? static_cast<Word>(sext(b, 8)) : b;
      }
      case 2: {
        const std::uint16_t h = readHalf(addr);
        return sign_extend ? static_cast<Word>(sext(h, 16)) : h;
      }
      case 4:
        return readWord(addr);
      default:
        panic("bad element size ", size);
    }
}

void
MainMemory::writeElem(Addr addr, unsigned size, Word value)
{
    switch (size) {
      case 1:
        writeByte(addr, static_cast<std::uint8_t>(value));
        break;
      case 2:
        writeHalf(addr, static_cast<std::uint16_t>(value));
        break;
      case 4:
        writeWord(addr, value);
        break;
      default:
        panic("bad element size ", size);
    }
}

} // namespace liquid
