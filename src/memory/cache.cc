#include "memory/cache.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace liquid
{

Cache::Cache(std::string name, const CacheConfig &config)
    : config_(config), stats_(std::move(name))
{
    LIQUID_ASSERT(isPowerOf2(config_.lineSize));
    const std::size_t num_lines = config_.sizeBytes / config_.lineSize;
    LIQUID_ASSERT(num_lines % config_.assoc == 0,
                  "cache size/assoc mismatch");
    numSets_ = static_cast<unsigned>(num_lines / config_.assoc);
    LIQUID_ASSERT(isPowerOf2(numSets_));
    lines_.resize(num_lines);
}

bool
Cache::access(Addr addr, bool is_write)
{
    ++useCounter_;
    stats_.inc("accesses");
    if (is_write)
        stats_.inc("writes");

    const Addr line_addr = addr / config_.lineSize;
    const unsigned set = line_addr & (numSets_ - 1);
    const Addr tag = line_addr >> log2i(numSets_);
    Line *ways = &lines_[static_cast<std::size_t>(set) * config_.assoc];

    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            ways[w].lastUse = useCounter_;
            ways[w].dirty = ways[w].dirty || is_write;
            stats_.inc("hits");
            return true;
        }
    }

    // Miss: fill into LRU (or first invalid) way.
    stats_.inc("misses");
    Line *victim = &ways[0];
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (!ways[w].valid) {
            victim = &ways[w];
            break;
        }
        if (ways[w].lastUse < victim->lastUse)
            victim = &ways[w];
    }
    if (victim->valid) {
        stats_.inc("evictions");
        if (victim->dirty)
            stats_.inc("writebacks");
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lastUse = useCounter_;
    return false;
}

unsigned
Cache::accessRange(Addr addr, unsigned bytes, bool is_write)
{
    unsigned misses = 0;
    const Addr first = addr / config_.lineSize;
    const Addr last = (addr + bytes - 1) / config_.lineSize;
    for (Addr line = first; line <= last; ++line) {
        if (!access(line * config_.lineSize, is_write))
            ++misses;
    }
    return misses;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
}

} // namespace liquid
