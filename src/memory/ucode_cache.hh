/**
 * @file
 * Microcode cache: stores dynamically translated SIMD instruction
 * sequences, keyed by the entry address of the outlined scalar function
 * they replace (paper Figure 1 / Section 5 "Dynamic Translation
 * Requirements": 8 entries of 64 SIMD instructions, a 2 KB SRAM).
 */

#ifndef LIQUID_MEMORY_UCODE_CACHE_HH
#define LIQUID_MEMORY_UCODE_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace liquid
{

/** One translated region. */
struct UcodeEntry
{
    Addr entryAddr = invalidAddr;   ///< outlined function entry
    std::vector<Inst> insts;        ///< SIMD microcode (self-contained)
    std::vector<ConstVec> cvecs;    ///< constants discovered at runtime
    unsigned simdWidth = 0;         ///< width the ucode was bound to
    Cycles readyAt = 0;             ///< first cycle it may be fetched
    /**
     * Exclusive end of the scalar code range the entry translates
     * ([entryAddr, codeEnd)), set by the translator at commit. Drives
     * self-modifying-code invalidation; invalidAddr means unknown and
     * the range degrades to the entry instruction alone.
     */
    Addr codeEnd = invalidAddr;
};

/** Geometry of the microcode cache. */
struct UcodeCacheConfig
{
    unsigned entries = 8;
    unsigned maxInsts = 64;
};

/** Fully associative LRU microcode cache. */
class UcodeCache
{
  public:
    explicit UcodeCache(const UcodeCacheConfig &config);

    /**
     * Insert a translated region, evicting the LRU entry when full.
     * panic()s if the entry exceeds maxInsts (the translator is
     * responsible for aborting oversized regions).
     */
    void insert(UcodeEntry entry);

    /**
     * Look up a region by entry address. Returns nullptr on miss or
     * when the entry is not yet ready at cycle @p now.
     * A hit refreshes LRU order.
     */
    const UcodeEntry *lookup(Addr entry_addr, Cycles now);

    /** True if the address is present, ready or not. No LRU update. */
    bool contains(Addr entry_addr) const;

    /** Drop all entries (context switch). Counted in "flushes". */
    void flush();

    /**
     * Drop the entry translated from @p entry_addr, if present.
     * Returns true when an entry was removed.
     */
    bool invalidate(Addr entry_addr);

    /**
     * Drop every entry whose source code range [entryAddr, codeEnd)
     * overlaps [lo, hi) — the self-modifying-code protocol. Entries
     * with unknown codeEnd match on their entry instruction alone.
     * Returns the entry addresses removed.
     */
    std::vector<Addr> invalidateRange(Addr lo, Addr hi);

    /** Entry addresses currently resident, MRU first. */
    std::vector<Addr> entryAddrs() const;

    /** LRU victim's entry address; invalidAddr when empty. */
    Addr lruEntryAddr() const;

    /** Most recently used entry address; invalidAddr when empty. */
    Addr mruEntryAddr() const;

    /**
     * Copy another cache's entries, marking them ready immediately.
     * Models a processor with built-in ISA support for the regions
     * (the paper's Figure 6 callout eliminates control generation).
     */
    void warmStartFrom(const UcodeCache &other);

    const UcodeCacheConfig &config() const { return config_; }
    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

  private:
    UcodeCacheConfig config_;
    /** MRU-first list of entries. */
    std::list<UcodeEntry> entries_;
    StatGroup stats_;
};

} // namespace liquid

#endif // LIQUID_MEMORY_UCODE_CACHE_HH
