#include "memory/ucode_cache.hh"

#include "common/logging.hh"

namespace liquid
{

UcodeCache::UcodeCache(const UcodeCacheConfig &config)
    : config_(config), stats_("ucodeCache")
{
    LIQUID_ASSERT(config_.entries >= 1);
}

void
UcodeCache::insert(UcodeEntry entry)
{
    LIQUID_ASSERT(entry.insts.size() <= config_.maxInsts,
                  "oversized microcode region must be aborted upstream");

    // Replace any stale translation of the same region.
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->entryAddr == entry.entryAddr) {
            entries_.erase(it);
            stats_.inc("replacements");
            break;
        }
    }

    if (entries_.size() >= config_.entries) {
        entries_.pop_back();  // LRU lives at the tail
        stats_.inc("evictions");
    }
    entries_.push_front(std::move(entry));
    stats_.inc("inserts");
}

const UcodeEntry *
UcodeCache::lookup(Addr entry_addr, Cycles now)
{
    stats_.inc("lookups");
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->entryAddr != entry_addr)
            continue;
        if (it->readyAt > now) {
            stats_.inc("notReadyMisses");
            return nullptr;
        }
        stats_.inc("hits");
        entries_.splice(entries_.begin(), entries_, it);
        return &entries_.front();
    }
    stats_.inc("misses");
    return nullptr;
}

bool
UcodeCache::contains(Addr entry_addr) const
{
    for (const auto &e : entries_) {
        if (e.entryAddr == entry_addr)
            return true;
    }
    return false;
}

void
UcodeCache::flush()
{
    entries_.clear();
}

void
UcodeCache::warmStartFrom(const UcodeCache &other)
{
    entries_ = other.entries_;
    for (auto &entry : entries_)
        entry.readyAt = 0;
}

} // namespace liquid
