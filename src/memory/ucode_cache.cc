#include "memory/ucode_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace liquid
{

UcodeCache::UcodeCache(const UcodeCacheConfig &config)
    : config_(config), stats_("ucodeCache")
{
    LIQUID_ASSERT(config_.entries >= 1);
}

void
UcodeCache::insert(UcodeEntry entry)
{
    LIQUID_ASSERT(entry.insts.size() <= config_.maxInsts,
                  "oversized microcode region must be aborted upstream");

    // Replace any stale translation of the same region.
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->entryAddr == entry.entryAddr) {
            entries_.erase(it);
            stats_.inc("replacements");
            break;
        }
    }

    if (entries_.size() >= config_.entries) {
        entries_.pop_back();  // LRU lives at the tail
        stats_.inc("evictions");
    }
    entries_.push_front(std::move(entry));
    stats_.inc("inserts");
}

const UcodeEntry *
UcodeCache::lookup(Addr entry_addr, Cycles now)
{
    stats_.inc("lookups");
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->entryAddr != entry_addr)
            continue;
        if (it->readyAt > now) {
            stats_.inc("notReadyMisses");
            return nullptr;
        }
        stats_.inc("hits");
        entries_.splice(entries_.begin(), entries_, it);
        return &entries_.front();
    }
    stats_.inc("misses");
    return nullptr;
}

bool
UcodeCache::contains(Addr entry_addr) const
{
    for (const auto &e : entries_) {
        if (e.entryAddr == entry_addr)
            return true;
    }
    return false;
}

void
UcodeCache::flush()
{
    stats_.inc("flushes");
    stats_.inc("flushedEntries", entries_.size());
    entries_.clear();
}

bool
UcodeCache::invalidate(Addr entry_addr)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->entryAddr == entry_addr) {
            entries_.erase(it);
            stats_.inc("invalidations");
            return true;
        }
    }
    return false;
}

std::vector<Addr>
UcodeCache::invalidateRange(Addr lo, Addr hi)
{
    std::vector<Addr> removed;
    for (auto it = entries_.begin(); it != entries_.end();) {
        const Addr begin = it->entryAddr;
        const Addr end = it->codeEnd != invalidAddr
                             ? std::max(it->codeEnd, begin + 4)
                             : begin + 4;
        if (lo < end && hi > begin) {
            removed.push_back(begin);
            it = entries_.erase(it);
            stats_.inc("invalidations");
        } else {
            ++it;
        }
    }
    return removed;
}

std::vector<Addr>
UcodeCache::entryAddrs() const
{
    std::vector<Addr> addrs;
    addrs.reserve(entries_.size());
    for (const auto &e : entries_)
        addrs.push_back(e.entryAddr);
    return addrs;
}

Addr
UcodeCache::lruEntryAddr() const
{
    return entries_.empty() ? invalidAddr : entries_.back().entryAddr;
}

Addr
UcodeCache::mruEntryAddr() const
{
    return entries_.empty() ? invalidAddr : entries_.front().entryAddr;
}

void
UcodeCache::warmStartFrom(const UcodeCache &other)
{
    entries_ = other.entries_;
    for (auto &entry : entries_)
        entry.readyAt = 0;
}

} // namespace liquid
