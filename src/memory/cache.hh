/**
 * @file
 * Set-associative cache timing model with true-LRU replacement.
 *
 * The paper's ARM-926EJ-S configuration uses 16 KB, 64-way associative
 * instruction and data caches; this model is purely for timing (the
 * functional data lives in MainMemory) so it tracks tags only.
 */

#ifndef LIQUID_MEMORY_CACHE_HH
#define LIQUID_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace liquid
{

/** Configuration for one cache. */
struct CacheConfig
{
    std::size_t sizeBytes = 16 * 1024;
    unsigned assoc = 64;
    unsigned lineSize = 32;
};

/** Tag-only set-associative LRU cache. */
class Cache
{
  public:
    Cache(std::string name, const CacheConfig &config);

    /**
     * Look up (and allocate on miss) the line containing @p addr.
     * @return true on hit.
     */
    bool access(Addr addr, bool is_write);

    /**
     * Access every line covered by [addr, addr + bytes).
     * @return number of misses.
     */
    unsigned accessRange(Addr addr, unsigned bytes, bool is_write);

    /** Drop all contents (e.g. across independent simulations). */
    void flush();

    unsigned lineSize() const { return config_.lineSize; }
    unsigned numSets() const { return numSets_; }

    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    CacheConfig config_;
    unsigned numSets_;
    std::vector<Line> lines_;  ///< numSets_ * assoc, set-major
    std::uint64_t useCounter_ = 0;
    StatGroup stats_;
};

} // namespace liquid

#endif // LIQUID_MEMORY_CACHE_HH
