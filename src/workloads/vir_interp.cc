#include "workloads/vir_interp.hh"

#include <map>

#include "common/logging.hh"
#include "cpu/exec.hh"

namespace liquid
{

std::vector<Word>
interpretKernel(const vir::Kernel &kernel, const Program &prog,
                MainMemory &mem)
{
    using vir::OpK;
    const unsigned width = kernel.maxWidth();

    std::vector<Word> accs;
    for (const auto &acc : kernel.accs())
        accs.push_back(acc.init);

    std::map<int, VecValue> values;

    for (unsigned base = 0; base < kernel.tripCount(); base += width) {
        values.clear();
        for (const vir::VInst &v : kernel.body()) {
            const bool is_float =
                v.dst >= 0 && kernel.values()[v.dst].isFloat;
            switch (v.k) {
              case OpK::Load: {
                const Addr addr = prog.symbol(v.array);
                VecValue out{};
                for (unsigned l = 0; l < width; ++l) {
                    out[l] = mem.readElem(
                        addr + (base + l + v.disp) * v.elemSize,
                        v.elemSize, v.isSigned);
                }
                values[v.dst] = out;
                break;
              }
              case OpK::Store: {
                const Addr addr = prog.symbol(v.array);
                const VecValue &src = values.at(v.a);
                for (unsigned l = 0; l < width; ++l) {
                    mem.writeElem(
                        addr + (base + l + v.disp) * v.elemSize,
                        v.elemSize, src[l]);
                }
                break;
              }
              case OpK::Bin:
                values[v.dst] = evalVectorOp(opInfo(v.op).vectorEquiv,
                                             values.at(v.a),
                                             values.at(v.b), width,
                                             is_float);
                break;
              case OpK::BinImm: {
                VecValue imm{};
                imm.fill(static_cast<Word>(v.imm));
                values[v.dst] = evalVectorOp(opInfo(v.op).vectorEquiv,
                                             values.at(v.a), imm, width,
                                             is_float);
                break;
              }
              case OpK::BinConst:
                values[v.dst] = evalVectorConstOp(
                    opInfo(v.op).vectorEquiv, values.at(v.a),
                    ConstVec{v.lanes}, width, is_float);
                break;
              case OpK::Perm:
                values[v.dst] = evalPerm(values.at(v.a), v.permKind,
                                         v.permBlock, width);
                break;
              case OpK::Mask:
                values[v.dst] = evalMask(values.at(v.a), v.maskBits,
                                         v.maskBlock, width);
                break;
              case OpK::Red: {
                const auto &acc_info = kernel.accs()[v.acc];
                accs[v.acc] = evalReduction(
                    opInfo(acc_info.op).reductionEquiv, accs[v.acc],
                    values.at(v.a), width, acc_info.isFloat);
                break;
              }
              default:
                panic("vir interpreter: unsupported op");
            }
        }
    }
    return accs;
}

} // namespace liquid
