#include "workloads/workload.hh"

#include <functional>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "workloads/vir_interp.hh"

namespace liquid
{

std::string
Workload::accResArray(unsigned k, unsigned a) const
{
    return "accres_k" + std::to_string(k) + "_a" + std::to_string(a);
}

Workload::Build
Workload::build(EmitOptions::Mode mode, unsigned width, bool hinted) const
{
    Build out;
    Program &prog = out.prog;

    setupData(prog);
    const auto kernels = makeKernels();

    // Accumulator result arrays, one slot per outer iteration.
    for (unsigned k = 0; k < kernels.size(); ++k) {
        for (unsigned a = 0; a < kernels[k].accs().size(); ++a)
            prog.allocData(accResArray(k, a), reps() * 4);
    }

    // Outlined modes emit the kernels as functions up front.
    const bool inline_mode = mode == EmitOptions::Mode::InlineScalar;
    if (!inline_mode) {
        for (unsigned k = 0; k < kernels.size(); ++k) {
            EmitOptions opts;
            opts.mode = mode;
            opts.nativeWidth = width;
            opts.hinted = hinted;
            opts.fnName = name() + "_k" + std::to_string(k);
            out.kernels.push_back(emitKernel(prog, kernels[k], opts));
            out.kernelEntries.push_back(
                Program::instAddr(prog.labelIndex(opts.fnName)));
        }
    }

    // Driver: r10 = outer counter, r11 = scalar-work counter.
    const RegId outer_reg(RegClass::Int, 10);
    const RegId work_reg(RegClass::Int, 11);

    prog.defineLabel("main");
    prog.addInst(Inst::movImm(outer_reg, 0));
    prog.defineLabel("outer");

    for (unsigned k = 0; k < kernels.size(); ++k) {
        if (inline_mode) {
            EmitResult r;
            for (unsigned c = 0; c < callsPerRep(); ++c) {
                EmitOptions opts;
                opts.mode = EmitOptions::Mode::InlineScalar;
                opts.fnName = name() + "_k" + std::to_string(k) + "_c" +
                              std::to_string(c);
                r = emitKernel(prog, kernels[k], opts);
            }
            if (out.kernels.size() <= k)
                out.kernels.push_back(r);
            for (unsigned a = 0; a < r.accRegs.size(); ++a) {
                prog.addInst(Inst::store(
                    Opcode::Stw, r.accRegs[a],
                    prog.ref(accResArray(k, a), outer_reg)));
            }
        } else {
            const std::string fn = name() + "_k" + std::to_string(k);
            for (unsigned c = 0; c < callsPerRep(); ++c) {
                prog.addInst(Inst::call(-1, hinted, fn,
                                        kernels[k].maxWidth()));
            }
            for (unsigned a = 0; a < out.kernels[k].accRegs.size(); ++a) {
                prog.addInst(Inst::store(
                    Opcode::Stw, out.kernels[k].accRegs[a],
                    prog.ref(accResArray(k, a), outer_reg)));
            }
        }
    }

    // Non-vectorizable scalar work.
    if (scalarWorkIters() > 0) {
        prog.addInst(Inst::movImm(work_reg, 0));
        prog.defineLabel("scalar_work");
        prog.addInst(Inst::dpImm(Opcode::Add, work_reg, work_reg, 1));
        prog.addInst(Inst::cmpImm(
            work_reg, static_cast<std::int32_t>(scalarWorkIters())));
        prog.addInst(Inst::branch(Cond::LT, -1, "scalar_work"));
    }

    prog.addInst(Inst::dpImm(Opcode::Add, outer_reg, outer_reg, 1));
    prog.addInst(
        Inst::cmpImm(outer_reg, static_cast<std::int32_t>(reps())));
    prog.addInst(Inst::branch(Cond::LT, -1, "outer"));
    prog.addInst(Inst::halt());

    prog.resolveBranches();
    return out;
}

void
Workload::goldenRun(const Build &build, MainMemory &mem) const
{
    const auto kernels = makeKernels();
    for (unsigned rep = 0; rep < reps(); ++rep) {
        for (unsigned k = 0; k < kernels.size(); ++k) {
            std::vector<Word> accs;
            for (unsigned c = 0; c < callsPerRep(); ++c)
                accs = interpretKernel(kernels[k], build.prog, mem);
            for (unsigned a = 0; a < accs.size(); ++a) {
                mem.writeWord(build.prog.symbol(accResArray(k, a)) +
                                  rep * 4,
                              accs[a]);
            }
        }
    }
}

std::vector<Word>
Workload::readArray(const Program &prog, const MainMemory &mem,
                    const std::string &name, unsigned words)
{
    const Addr base = prog.symbol(name);
    std::vector<Word> out(words);
    for (unsigned i = 0; i < words; ++i)
        out[i] = mem.readWord(base + i * 4);
    return out;
}

std::vector<std::pair<std::string, unsigned>>
Workload::allOutputs() const
{
    auto out = outputs();
    const auto kernels = makeKernels();
    for (unsigned k = 0; k < kernels.size(); ++k) {
        for (unsigned a = 0; a < kernels[k].accs().size(); ++a)
            out.emplace_back(accResArray(k, a), reps());
    }
    return out;
}

std::vector<Word>
randomWords(const std::string &seed, unsigned count, std::int32_t lo,
            std::int32_t hi)
{
    Rng rng(std::hash<std::string>{}(seed));
    std::vector<Word> out(count);
    for (auto &w : out)
        w = static_cast<Word>(static_cast<std::int32_t>(rng.range(lo, hi)));
    return out;
}

std::vector<Word>
randomFloats(const std::string &seed, unsigned count, float lo, float hi)
{
    Rng rng(std::hash<std::string>{}(seed) ^ 0xF10A7ull);
    std::vector<Word> out(count);
    for (auto &w : out)
        w = floatToBits(lo + (hi - lo) * rng.nextFloat());
    return out;
}

} // namespace liquid
