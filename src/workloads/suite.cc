/**
 * @file
 * The fifteen-benchmark suite from the paper's evaluation (Section 5):
 * SPECfp92 (052.alvinn, 056.ear, 093.nasa7), SPECfp95 (101.tomcatv,
 * 104.hydro2d), SPECfp2000 (171.swim, 172.mgrid, 179.art), MediaBench
 * (MPEG2 encode/decode, GSM encode/decode) and signal-processing
 * kernels (LU, FIR, FFT).
 *
 * SPEC and MediaBench sources/inputs are proprietary, so each workload
 * reproduces the documented *hot-loop structure* of its benchmark (see
 * DESIGN.md substitution 3): the paper only SIMDizes hot loops of 11-62
 * scalar instructions (Table 5), and reports behaviour we mirror here —
 * 179.art thrashes the 16 KB data cache, the MPEG2 loops operate on
 * 8-element vectors and stop scaling past width 8, GSM uses saturating
 * arithmetic idioms, FIR is almost fully vectorizable, and the FFT
 * kernel is the paper's own running example (Figures 2-4).
 */

#include "workloads/workload.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace liquid
{

namespace
{

using vir::Kernel;

/** Pad arrays so displaced loads stay in bounds. */
constexpr unsigned pad = 16;

// ---------------------------------------------------------------------------
// 052.alvinn — MLP layer forward pass: dot products (reductions).
// ---------------------------------------------------------------------------

class Alvinn : public Workload
{
  public:
    std::string name() const override { return "052.alvinn"; }
    unsigned defaultReps() const override { return 4; }
    unsigned scalarWorkIters() const override { return 800; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("in", randomWords("alvinn.in", n + pad, -100, 100));
        prog.allocWords("w0", randomWords("alvinn.w0", n + pad, -50, 50));
        prog.allocWords("w1", randomWords("alvinn.w1", n + pad, -50, 50));
        prog.allocData("hidden_out", (n + pad) * 4);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        Kernel k("alvinn_dot", n);
        const int acc0 = k.newAcc("h0", Opcode::Add, 0);
        const int acc1 = k.newAcc("h1", Opcode::Add, 0);
        const int x = k.load("in");
        const int a = k.load("w0");
        k.reduce(acc0, k.bin(Opcode::Mul, x, a));
        const int b = k.load("w1");
        k.reduce(acc1, k.bin(Opcode::Mul, x, b));

        // Output layer: piecewise-linear activation over the hidden
        // vector (alvinn's second hot loop).
        Kernel act("alvinn_act", n);
        {
            const int h = act.load("w0");
            const int scaled = act.binImm(Opcode::Mul, h, 3);
            const int hi = act.binImm(Opcode::Min, scaled, 120);
            const int lo = act.binImm(Opcode::Max, hi, -120);
            act.store("hidden_out", lo);
        }
        return {k, act};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"hidden_out", n}};
    }

  private:
    static constexpr unsigned n = 256;
};

// ---------------------------------------------------------------------------
// 056.ear — gammatone filterbank stage: short FIR + envelope maximum.
// ---------------------------------------------------------------------------

class Ear : public Workload
{
  public:
    std::string name() const override { return "056.ear"; }
    unsigned defaultReps() const override { return 4; }
    unsigned scalarWorkIters() const override { return 1200; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("x", randomFloats("ear.x", n + pad, -1.f, 1.f));
        prog.allocData("env", (n + pad) * 4);
        prog.allocData("smoothed", (n + pad) * 4);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        Kernel k("ear_filter", n);
        const int acc = k.newAcc("envmax", Opcode::Max,
                                 floatToBits(-1e30f), true);
        // Six-tap bandpass with fixed float coefficients. Float lane
        // constants are too wide for the translator's value state, so
        // they stay as constant-array vector loads after translation —
        // which is still exact (paper Section 4.1).
        static const float taps[6] = {0.21f, -0.38f, 0.56f,
                                      0.56f, -0.38f, 0.21f};
        int sum = -1;
        for (unsigned t = 0; t < 6; ++t) {
            const int xi = k.load("x", 4, true, false,
                                  static_cast<std::int32_t>(t));
            const int scaled = k.binConst(
                Opcode::Mul, xi, {floatToBits(taps[t])});
            sum = t == 0 ? scaled : k.bin(Opcode::Add, sum, scaled);
        }
        k.store("env", sum);
        k.reduce(acc, sum);

        // Second stage: rectification + smoothing of the envelope.
        Kernel sm("ear_smooth", n);
        {
            const Word zero = floatToBits(0.0f);
            const Word w1 = floatToBits(0.6f);
            const Word w2 = floatToBits(0.4f);
            const int e0 = sm.load("env", 4, true);
            const int e1 = sm.load("env", 4, true, false, 1);
            const int r0 = sm.binConst(Opcode::Max, e0, {zero});
            const int r1 = sm.binConst(Opcode::Max, e1, {zero});
            const int a0 = sm.binConst(Opcode::Mul, r0, {w1});
            const int a1 = sm.binConst(Opcode::Mul, r1, {w2});
            sm.store("smoothed", sm.bin(Opcode::Add, a0, a1));
        }
        return {k, sm};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"env", n}, {"smoothed", n}};
    }

  private:
    static constexpr unsigned n = 512;
};

// ---------------------------------------------------------------------------
// 093.nasa7 — matrix kernel mix: row scale/add plus dot product.
// ---------------------------------------------------------------------------

class Nasa7 : public Workload
{
  public:
    std::string name() const override { return "093.nasa7"; }
    unsigned defaultReps() const override { return 4; }
    unsigned scalarWorkIters() const override { return 1500; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("ma", randomWords("nasa7.a", n + pad, -40, 40));
        prog.allocWords("mb", randomWords("nasa7.b", n + pad, -40, 40));
        prog.allocWords("mc", randomWords("nasa7.c", n + pad, -40, 40));
        prog.allocData("md", (n + pad) * 4);
        prog.allocData("me", (n + pad) * 4);
        prog.allocData("mf", (n + pad) * 4);
        prog.allocData("mg", (n + pad) * 4);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        // mxm-style inner loop: two fused multiply-adds, a row update
        // and a running dot product.
        Kernel k("nasa7_mxm", n);
        const int acc = k.newAcc("dot", Opcode::Add, 0);
        const int a = k.load("ma");
        const int b = k.load("mb");
        const int c = k.load("mc");
        const int ab = k.bin(Opcode::Mul, a, b);
        const int t0 = k.bin(Opcode::Add, ab, c);
        k.store("md", t0);
        const int a1 = k.load("ma", 4, false, false, 1);
        const int b1 = k.load("mb", 4, false, false, 2);
        const int t1 = k.bin(Opcode::Mul, a1, b1);
        const int t2 = k.bin(Opcode::Sub, t1, ab);
        const int t3 = k.binImm(Opcode::Asr, t2, 2);
        k.store("me", t3);
        k.reduce(acc, t3);
        const int mn = k.bin(Opcode::Min, t0, t3);
        k.store("md", mn, 0);

        // vpenta-style second hot loop: a wider solve step with five
        // streams and two outputs (093.nasa7's loops are the paper's
        // largest, mean 45.5 instructions).
        Kernel v("nasa7_vpenta", n);
        {
            const int x0 = v.load("ma");
            const int x1 = v.load("ma", 4, false, false, 1);
            const int x2 = v.load("mb");
            const int x3 = v.load("mb", 4, false, false, 2);
            const int x4 = v.load("mc", 4, false, false, 1);
            const int p0 = v.bin(Opcode::Mul, x0, x2);
            const int p1 = v.bin(Opcode::Mul, x1, x3);
            const int d = v.bin(Opcode::Sub, p0, p1);
            const int e = v.bin(Opcode::Add, d, x4);
            const int f = v.binImm(Opcode::Asr, e, 1);
            const int g = v.bin(Opcode::Max, f, x0);
            const int h = v.bin(Opcode::Eor, g, x3);
            const int i2 = v.binImm(Opcode::And, h, 0xFFFF);
            v.store("mf", i2);
            const int j = v.bin(Opcode::Add, i2, f);
            v.store("mg", j);
        }
        return {k, v};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"md", n}, {"me", n}, {"mf", n}, {"mg", n}};
    }

  private:
    static constexpr unsigned n = 384;
};

// ---------------------------------------------------------------------------
// 101.tomcatv — mesh-smoothing stencil over two coordinate planes.
// ---------------------------------------------------------------------------

class Tomcatv : public Workload
{
  public:
    std::string name() const override { return "101.tomcatv"; }
    unsigned defaultReps() const override { return 4; }
    unsigned scalarWorkIters() const override { return 1600; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("tx", randomFloats("tomcatv.x", n + pad,
                                           -2.f, 2.f));
        prog.allocWords("ty", randomFloats("tomcatv.y", n + pad,
                                           -2.f, 2.f));
        prog.allocData("txn", (n + pad) * 4);
        prog.allocData("tyn", (n + pad) * 4);
        prog.allocData("trr", (n + pad) * 4);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        Kernel k("tomcatv_smooth", n);
        const Word half = floatToBits(0.5f);
        const Word quarter = floatToBits(0.25f);
        const int x0 = k.load("tx", 4, true);
        const int x1 = k.load("tx", 4, true, false, 1);
        const int x2 = k.load("tx", 4, true, false, 2);
        const int y0 = k.load("ty", 4, true);
        const int y1 = k.load("ty", 4, true, false, 1);
        const int y2 = k.load("ty", 4, true, false, 2);
        const int sx = k.bin(Opcode::Add, x0, x2);
        const int sy = k.bin(Opcode::Add, y0, y2);
        const int cx = k.binConst(Opcode::Mul, x1, {half});
        const int cy = k.binConst(Opcode::Mul, y1, {half});
        const int qx = k.binConst(Opcode::Mul, sx, {quarter});
        const int qy = k.binConst(Opcode::Mul, sy, {quarter});
        const int nx = k.bin(Opcode::Add, cx, qx);
        const int ny = k.bin(Opcode::Add, cy, qy);
        const int rx = k.bin(Opcode::Sub, nx, ny);
        k.store("txn", nx, 1);
        k.store("tyn", ny, 1);
        k.store("txn", rx, 0);

        // Residual/convergence loop (tomcatv's rmax search).
        Kernel r("tomcatv_resid", n);
        {
            const int acc = r.newAcc("rmax", Opcode::Max,
                                     floatToBits(-1e30f), true);
            const int x = r.load("tx", 4, true);
            const int xn = r.load("txn", 4, true);
            const int d = r.bin(Opcode::Sub, xn, x);
            const int dmax = r.bin(Opcode::Max, d,
                                   r.bin(Opcode::Sub, x, xn));
            r.store("trr", dmax);
            r.reduce(acc, dmax);
        }
        return {k, r};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"txn", n}, {"tyn", n}, {"trr", n}};
    }

  private:
    static constexpr unsigned n = 448;
};

// ---------------------------------------------------------------------------
// 104.hydro2d — Godunov flux limiter: elementwise min/max chains.
// ---------------------------------------------------------------------------

class Hydro2d : public Workload
{
  public:
    std::string name() const override { return "104.hydro2d"; }
    unsigned defaultReps() const override { return 4; }
    unsigned scalarWorkIters() const override { return 1400; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("hu", randomWords("hydro.u", n + pad, -500, 500));
        prog.allocData("hflux", (n + pad) * 4);
        prog.allocData("hlim", (n + pad) * 4);
        prog.allocData("hnew", (n + pad) * 4);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        Kernel k("hydro2d_limit", n);
        const int u0 = k.load("hu");
        const int u1 = k.load("hu", 4, false, false, 1);
        const int u2 = k.load("hu", 4, false, false, 2);
        const int d1 = k.bin(Opcode::Sub, u1, u0);
        const int d2 = k.bin(Opcode::Sub, u2, u1);
        const int mn = k.bin(Opcode::Min, d1, d2);
        const int mx = k.bin(Opcode::Max, d1, d2);
        const int zero_clip = k.binImm(Opcode::Max, mn, 0);
        const int cap = k.binImm(Opcode::Min, mx, 64);
        const int lim = k.bin(Opcode::Add, zero_clip, cap);
        const int flux = k.bin(Opcode::Mul, lim, d1);
        const int scaled = k.binImm(Opcode::Asr, flux, 3);
        k.store("hflux", scaled);
        k.store("hlim", lim);

        // Advection update consuming the fluxes.
        Kernel adv("hydro2d_advect", n);
        {
            const int u = adv.load("hu");
            const int f0 = adv.load("hflux");
            const int f1 = adv.load("hflux", 4, false, false, 1);
            const int df = adv.bin(Opcode::Sub, f1, f0);
            const int upd = adv.bin(Opcode::Sub, u, df);
            const int clip = adv.binImm(Opcode::Min, upd, 2000);
            adv.store("hnew", adv.binImm(Opcode::Max, clip, -2000));
        }
        return {k, adv};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"hflux", n}, {"hlim", n}, {"hnew", n}};
    }

  private:
    static constexpr unsigned n = 512;
};

// ---------------------------------------------------------------------------
// 171.swim — shallow-water stencil over u/v/p fields.
// ---------------------------------------------------------------------------

class Swim : public Workload
{
  public:
    std::string name() const override { return "171.swim"; }
    unsigned defaultReps() const override { return 4; }
    unsigned scalarWorkIters() const override { return 1800; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("su", randomFloats("swim.u", n + pad, -1.f, 1.f));
        prog.allocWords("sv", randomFloats("swim.v", n + pad, -1.f, 1.f));
        prog.allocWords("sp", randomFloats("swim.p", n + pad, 1.f, 2.f));
        prog.allocData("scu", (n + pad) * 4);
        prog.allocData("scv", (n + pad) * 4);
        prog.allocData("sz", (n + pad) * 4);
        prog.allocData("snew", (n + pad) * 4);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        // The paper notes 171.swim's hot loops operate on long vectors
        // (e.g. 514 elements) passed through memory between loops.
        Kernel k("swim_calc", n);
        const Word half = floatToBits(0.5f);
        const int u0 = k.load("su", 4, true);
        const int u1 = k.load("su", 4, true, false, 1);
        const int v0 = k.load("sv", 4, true);
        const int v1 = k.load("sv", 4, true, false, 1);
        const int p0 = k.load("sp", 4, true);
        const int p1 = k.load("sp", 4, true, false, 1);
        const int pu = k.bin(Opcode::Add, p0, p1);
        const int cu = k.bin(Opcode::Mul,
                             k.binConst(Opcode::Mul, pu, {half}), u1);
        const int cv = k.bin(Opcode::Mul,
                             k.binConst(Opcode::Mul, pu, {half}), v1);
        k.store("scu", cu);
        k.store("scv", cv);
        const int du = k.bin(Opcode::Sub, u1, u0);
        const int dv = k.bin(Opcode::Sub, v1, v0);
        const int z = k.bin(Opcode::Sub, du, dv);
        k.store("sz", z);

        // Second time-step loop reading the fluxes back.
        Kernel c2("swim_calc2", n);
        {
            const Word quarter = floatToBits(0.25f);
            const int cu0 = c2.load("scu", 4, true);
            const int cu1 = c2.load("scu", 4, true, false, 1);
            const int cv0 = c2.load("scv", 4, true);
            const int z0 = c2.load("sz", 4, true);
            const int s = c2.bin(Opcode::Add, cu0, cu1);
            const int m = c2.binConst(Opcode::Mul, s, {quarter});
            const int w = c2.bin(Opcode::Sub, m, cv0);
            const int out = c2.bin(Opcode::Add, w, z0);
            c2.store("snew", out);
        }
        return {k, c2};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"scu", n}, {"scv", n}, {"sz", n}, {"snew", n}};
    }

  private:
    static constexpr unsigned n = 512;
};

// ---------------------------------------------------------------------------
// 172.mgrid — multigrid relaxation: wide weighted stencil.
// ---------------------------------------------------------------------------

class Mgrid : public Workload
{
  public:
    std::string name() const override { return "172.mgrid"; }
    unsigned defaultReps() const override { return 4; }
    unsigned scalarWorkIters() const override { return 1700; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("mr", randomFloats("mgrid.r", n + pad, -1.f, 1.f));
        prog.allocWords("mz", randomFloats("mgrid.z", n + pad, -1.f, 1.f));
        prog.allocData("mzn", (n + pad) * 4);
        prog.allocData("mres", (n + pad) * 4);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        Kernel relax("mgrid_relax", n);
        {
            const Word w0 = floatToBits(0.5f);
            const Word w1 = floatToBits(0.25f);
            const Word w2 = floatToBits(0.125f);
            const int r0 = relax.load("mr", 4, true);
            const int r1 = relax.load("mr", 4, true, false, 1);
            const int r2 = relax.load("mr", 4, true, false, 2);
            const int r3 = relax.load("mr", 4, true, false, 3);
            const int r4 = relax.load("mr", 4, true, false, 4);
            const int c = relax.binConst(Opcode::Mul, r2, {w0});
            const int near = relax.binConst(
                Opcode::Mul, relax.bin(Opcode::Add, r1, r3), {w1});
            const int far = relax.binConst(
                Opcode::Mul, relax.bin(Opcode::Add, r0, r4), {w2});
            const int z = relax.bin(
                Opcode::Add, relax.bin(Opcode::Add, c, near), far);
            relax.store("mzn", z);
        }
        Kernel resid("mgrid_resid", n);
        {
            const int z0 = resid.load("mz", 4, true);
            const int z1 = resid.load("mz", 4, true, false, 1);
            const int r = resid.load("mr", 4, true);
            const int d = resid.bin(Opcode::Sub, r,
                                    resid.bin(Opcode::Sub, z1, z0));
            resid.store("mres", d);
        }
        return {relax, resid};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"mzn", n}, {"mres", n}};
    }

  private:
    static constexpr unsigned n = 512;
};

// ---------------------------------------------------------------------------
// 179.art — ART F1 neural layer over arrays far larger than the 16 KB
// data cache: speedup limited by misses (paper Section 5).
// ---------------------------------------------------------------------------

class Art : public Workload
{
  public:
    std::string name() const override { return "179.art"; }
    unsigned defaultReps() const override { return 4; }
    unsigned scalarWorkIters() const override { return 800; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("af", randomWords("art.f", n + pad, -30, 30));
        prog.allocWords("aw", randomWords("art.w", n + pad, -30, 30));
        prog.allocWords("ay", randomWords("art.y", n + pad, -30, 30));
        prog.allocWords("at", randomWords("art.t", m + pad, -90, 90));
        prog.allocWords("au", randomWords("art.u", m + pad, -90, 90));
        prog.allocData("af2", (m + pad) * 4);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        Kernel k("art_f1", n);
        const int acc = k.newAcc("winner", Opcode::Max,
                                 static_cast<Word>(-2147483647), false);
        const int f = k.load("af");
        const int w = k.load("aw");
        const int y = k.load("ay");
        const int p = k.bin(Opcode::Mul, f, w);
        const int upd = k.bin(Opcode::Add, p, y);
        k.store("ay", upd);
        k.reduce(acc, upd);

        // F2 winner-take-all pass over the (much smaller) category
        // layer — art's other hot loop.
        Kernel f2("art_f2", m);
        {
            const int acc2 = f2.newAcc("f2max", Opcode::Max,
                                       static_cast<Word>(-2147483647),
                                       false);
            const int t = f2.load("at");
            const int u = f2.load("au");
            const int net = f2.bin(Opcode::Sub, t, u);
            const int clipped = f2.binImm(Opcode::Max, net, 0);
            f2.store("af2", clipped);
            f2.reduce(acc2, clipped);
        }
        return {k, f2};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"ay", n}, {"af2", m}};
    }

  private:
    // 3 arrays x 64 KB >> 16 KB cache.
    static constexpr unsigned n = 16384;
    static constexpr unsigned m = 1024;
};

// ---------------------------------------------------------------------------
// MPEG2 Decode — 8-point IDCT butterfly rows (8-element vectors, so no
// benefit past width 8; paper Figure 6) plus saturating pixel add.
// ---------------------------------------------------------------------------

class Mpeg2Dec : public Workload
{
  public:
    std::string name() const override { return "mpeg2dec"; }
    unsigned defaultReps() const override { return 6; }
    unsigned callsPerRep() const override { return 4; }
    unsigned scalarWorkIters() const override { return 40; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("blk", randomWords("m2d.blk", 8 + pad, -256, 256));
        prog.allocData("idct_out", (8 + pad) * 4);
        prog.allocWords("pa",
                        randomWords("m2d.pa", n + pad, -20000, 20000));
        prog.allocWords("pb",
                        randomWords("m2d.pb", n + pad, -20000, 20000));
        prog.allocData("pix", (n + pad) * 4);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        // One IDCT butterfly stage: operates on exactly 8 elements, so
        // translation requires an 8-wide accelerator and a 16-wide one
        // gains nothing (trip count 8 is not a multiple of 16).
        Kernel idct("m2d_idct8", 8, 8);
        {
            const int t = idct.load("blk");
            const int c = idct.perm(t, PermKind::SwapHalves, 8);
            const int s = idct.bin(Opcode::Add, t, c);
            idct.store("idct_out", s);
        }
        // Motion-compensation add with saturation.
        // Compiled to a maximum vectorizable width of 8 like the rest
        // of the codec (the paper's MPEG2 loops are 8-element).
        Kernel satadd("m2d_satadd", n, 8);
        {
            const int a = satadd.load("pa");
            const int b = satadd.load("pb");
            const int s = satadd.bin(Opcode::Qadd, a, b);
            satadd.store("pix", s);
        }
        return {idct, satadd};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"idct_out", 8}, {"pix", n}};
    }

  private:
    static constexpr unsigned n = 64;
};

// ---------------------------------------------------------------------------
// MPEG2 Encode — SAD reduction and quantization.
// ---------------------------------------------------------------------------

class Mpeg2Enc : public Workload
{
  public:
    std::string name() const override { return "mpeg2enc"; }
    unsigned defaultReps() const override { return 6; }
    unsigned callsPerRep() const override { return 4; }
    unsigned scalarWorkIters() const override { return 60; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("ref", randomWords("m2e.ref", n + pad, 0, 255));
        prog.allocWords("cur", randomWords("m2e.cur", n + pad, 0, 255));
        prog.allocWords("coef",
                        randomWords("m2e.coef", m + pad, -1000, 1000));
        prog.allocData("qcoef", (m + pad) * 4);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        Kernel sad("m2e_sad", n);
        {
            const int acc = sad.newAcc("sad", Opcode::Add, 0);
            const int a = sad.load("ref");
            const int b = sad.load("cur");
            const int d1 = sad.bin(Opcode::Sub, a, b);
            const int d2 = sad.bin(Opcode::Sub, b, a);
            const int ad = sad.bin(Opcode::Max, d1, d2);
            sad.reduce(acc, ad);
        }
        Kernel quant("m2e_quant", m, 8);
        {
            const int c = quant.load("coef");
            const int scaled = quant.binImm(Opcode::Mul, c, 17);
            const int q = quant.binImm(Opcode::Asr, scaled, 5);
            quant.store("qcoef", q);
        }
        return {sad, quant};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"qcoef", m}};
    }

  private:
    static constexpr unsigned n = 256;
    static constexpr unsigned m = 8;
};

// ---------------------------------------------------------------------------
// GSM Decode — long-term-prediction synthesis with saturating adds on
// 16-bit samples (the paper's saturation idiom, Section 3.2).
// ---------------------------------------------------------------------------

class GsmDec : public Workload
{
  public:
    std::string name() const override { return "gsmdec"; }
    unsigned defaultReps() const override { return 8; }
    unsigned scalarWorkIters() const override { return 300; }

    void
    setupData(Program &prog) const override
    {
        std::vector<Word> exc =
            randomWords("gsmd.exc", (n + pad) / 2, -12000, 12000);
        std::vector<Word> past =
            randomWords("gsmd.past", (n + pad) / 2, -12000, 12000);
        // Halfword arrays packed two samples per word.
        prog.allocData("exc", (n + pad) * 2);
        prog.allocData("past", (n + pad) * 2);
        prog.allocData("synth", (n + pad) * 2);
        prog.allocData("stout", (n + pad) * 2);
        for (unsigned i = 0; i < (n + pad) / 2; ++i) {
            prog.initWord(prog.symbol("exc") + i * 4, exc[i]);
            prog.initWord(prog.symbol("past") + i * 4, past[i]);
        }
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        Kernel k("gsmdec_ltp", n);
        const int e = k.load("exc", 2, false, true);
        const int p = k.load("past", 2, false, true);
        const int scaled = k.binImm(Opcode::Mul, p, 13);
        const int shifted = k.binImm(Opcode::Asr, scaled, 4);
        const int s = k.bin(Opcode::Qadd, e, shifted);
        const int s2 = k.bin(Opcode::Qadd, s, s);
        k.store("synth", s2, 0);

        // Short-term synthesis: reflection-coefficient stage with two
        // saturating updates (GSM 06.10 is idiom-heavy; paper: 25
        // instructions per loop).
        Kernel st("gsmdec_short", n);
        {
            const int sr = st.load("synth", 2, false, true);
            const int rp = st.load("past", 2, false, true);
            const int scaled = st.binImm(Opcode::Mul, rp, 9);
            const int shifted = st.binImm(Opcode::Asr, scaled, 4);
            const int u = st.bin(Opcode::Qsub, sr, shifted);
            const int v2 = st.bin(Opcode::Qadd, u, rp);
            st.store("stout", v2);
        }
        return {k, st};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"synth", n / 2}, {"stout", n / 2}};
    }

  private:
    static constexpr unsigned n = 160;
};

// ---------------------------------------------------------------------------
// GSM Encode — autocorrelation lags (reductions over shifted products).
// ---------------------------------------------------------------------------

class GsmEnc : public Workload
{
  public:
    std::string name() const override { return "gsmenc"; }
    unsigned defaultReps() const override { return 8; }
    unsigned scalarWorkIters() const override { return 400; }

    void
    setupData(Program &prog) const override
    {
        std::vector<Word> s =
            randomWords("gsme.s", (n + pad) / 2, -120, 120);
        prog.allocData("spch", (n + pad) * 2);
        prog.allocData("pout", (n + pad) * 2);
        for (unsigned i = 0; i < (n + pad) / 2; ++i)
            prog.initWord(prog.symbol("spch") + i * 4, s[i]);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        Kernel k("gsmenc_autoc", n);
        const int acc0 = k.newAcc("l0", Opcode::Add, 0);
        const int acc1 = k.newAcc("l1", Opcode::Add, 0);
        const int acc2 = k.newAcc("l2", Opcode::Add, 0);
        const int x = k.load("spch", 2, false, true);
        k.reduce(acc0, k.bin(Opcode::Mul, x, x));
        const int x1 = k.load("spch", 2, false, true, 1);
        k.reduce(acc1, k.bin(Opcode::Mul, x, x1));
        const int x2 = k.load("spch", 2, false, true, 2);
        k.reduce(acc2, k.bin(Opcode::Mul, x, x2));

        // Pre-emphasis filter with saturation (GSM 06.10 style):
        // p[i] = sat(s[i] - (s[i+1]*11 >> 4)).
        Kernel pre("gsmenc_preemph", n);
        {
            const int s0 = pre.load("spch", 2, false, true);
            const int s1 = pre.load("spch", 2, false, true, 1);
            const int scaled = pre.binImm(Opcode::Mul, s1, 11);
            const int shifted = pre.binImm(Opcode::Asr, scaled, 4);
            const int out = pre.bin(Opcode::Qsub, s0, shifted);
            pre.store("pout", out);
        }
        return {k, pre};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"pout", n / 2}};
    }

  private:
    static constexpr unsigned n = 160;
};

// ---------------------------------------------------------------------------
// LU — row elimination: the classic daxpy-like update.
// ---------------------------------------------------------------------------

class Lu : public Workload
{
  public:
    std::string name() const override { return "lu"; }
    unsigned defaultReps() const override { return 6; }
    unsigned scalarWorkIters() const override { return 500; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("rowi", randomWords("lu.rowi", n + pad, -60, 60));
        prog.allocWords("rowj", randomWords("lu.rowj", n + pad, -60, 60));
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        Kernel k("lu_elim", n);
        const int rj = k.load("rowj");
        const int ri = k.load("rowi");
        const int scaled = k.binImm(Opcode::Mul, ri, 3);
        const int upd = k.bin(Opcode::Sub, rj, scaled);
        k.store("rowj", upd);
        return {k};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"rowj", n}};
    }

  private:
    static constexpr unsigned n = 256;
};

// ---------------------------------------------------------------------------
// FIR — 4-tap integer FIR, almost fully vectorizable (the paper's
// highest speedup: ~94% of runtime in the hot loop).
// ---------------------------------------------------------------------------

class Fir : public Workload
{
  public:
    std::string name() const override { return "fir"; }
    unsigned defaultReps() const override { return 24; }
    unsigned scalarWorkIters() const override { return 30; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("fx", randomWords("fir.x", n + pad, -100, 100));
        prog.allocData("fy", (n + pad) * 4);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        // Splat tap coefficients are scalar-supported constants
        // (paper Table 1 category 2): plain immediates, no table.
        Kernel k("fir4", n);
        static const std::int32_t taps[4] = {3, -5, 7, -2};
        int sum = -1;
        for (unsigned t = 0; t < 4; ++t) {
            const int xi =
                k.load("fx", 4, false, false,
                       static_cast<std::int32_t>(t));
            const int scaled = k.binImm(Opcode::Mul, xi, taps[t]);
            sum = t == 0 ? scaled : k.bin(Opcode::Add, sum, scaled);
        }
        k.store("fy", sum);
        return {k};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"fy", n}};
    }

  private:
    static constexpr unsigned n = 1024;
};

// ---------------------------------------------------------------------------
// FFT — the paper's running example (Figures 2-4), reproduced literally
// as the block-8 butterfly kernel, plus narrower butterfly stages so
// narrow accelerators also find translatable loops.
// ---------------------------------------------------------------------------

class Fft : public Workload
{
  public:
    std::string name() const override { return "fft"; }
    unsigned defaultReps() const override { return 5; }
    unsigned scalarWorkIters() const override { return 700; }

    void
    setupData(Program &prog) const override
    {
        prog.allocWords("RealOut",
                        randomFloats("fft.re", n + pad, -1.f, 1.f));
        prog.allocWords("ImagOut",
                        randomFloats("fft.im", n + pad, -1.f, 1.f));
        prog.allocWords("ar", randomFloats("fft.ar", n + pad, -1.f, 1.f));
        prog.allocWords("ai", randomFloats("fft.ai", n + pad, -1.f, 1.f));
        prog.allocData("stage2", (n + pad) * 4);
        prog.allocData("stage4", (n + pad) * 4);
    }

    std::vector<Kernel>
    makeKernels() const override
    {
        // Early radix-2 stages with narrow butterflies.
        Kernel s2("fft_stage2", n);
        {
            const int x = s2.load("ImagOut", 4, true);
            const int xp = s2.perm(x, PermKind::SwapPairs, 2);
            const int s = s2.bin(Opcode::Add, x, xp);
            s2.store("stage2", s);
        }
        Kernel s4("fft_stage4", n);
        {
            const int y = s4.load("ar", 4, true);
            const int yp = s4.perm(y, PermKind::Reverse, 4);
            const int d = s4.bin(Opcode::Sub, yp, y);
            s4.store("stage4", d);
        }
        // The paper's Figure 4(A) loop, verbatim.
        Kernel s8("fft_bfly8", n);
        {
            const int v0 = s8.load("RealOut", 4, true);
            const int v0b = s8.perm(v0, PermKind::SwapHalves, 8);
            const int v1 = s8.load("ImagOut", 4, true);
            const int v1b = s8.perm(v1, PermKind::SwapHalves, 8);
            const int v2 = s8.load("ar", 4, true);
            const int v3 = s8.load("ai", 4, true);
            const int t2 = s8.bin(Opcode::Mul, v2, v0b);
            const int t3 = s8.bin(Opcode::Mul, v3, v1b);
            const int tr = s8.bin(Opcode::Sub, t2, t3);
            const int v5 = s8.load("RealOut", 4, true);
            const int lo = s8.bin(Opcode::Sub, v5, tr);
            const int hi = s8.bin(Opcode::Add, v5, tr);
            const int mlo = s8.mask(lo, 0xF0, 8);
            const int mhi = s8.mask(hi, 0xF0, 8);
            const int mlob = s8.perm(mlo, PermKind::SwapHalves, 8);
            const int merged = s8.bin(Opcode::Orr, mlob, mhi);
            s8.store("RealOut", merged);
        }
        return {s2, s4, s8};
    }

    std::vector<std::pair<std::string, unsigned>>
    outputs() const override
    {
        return {{"stage2", n}, {"stage4", n}, {"RealOut", n}};
    }

  private:
    static constexpr unsigned n = 128;
};

} // namespace

std::vector<std::unique_ptr<Workload>>
makeSuite()
{
    std::vector<std::unique_ptr<Workload>> suite;
    suite.push_back(std::make_unique<Alvinn>());
    suite.push_back(std::make_unique<Ear>());
    suite.push_back(std::make_unique<Nasa7>());
    suite.push_back(std::make_unique<Tomcatv>());
    suite.push_back(std::make_unique<Hydro2d>());
    suite.push_back(std::make_unique<Swim>());
    suite.push_back(std::make_unique<Mgrid>());
    suite.push_back(std::make_unique<Art>());
    suite.push_back(std::make_unique<Mpeg2Dec>());
    suite.push_back(std::make_unique<Mpeg2Enc>());
    suite.push_back(std::make_unique<GsmDec>());
    suite.push_back(std::make_unique<GsmEnc>());
    suite.push_back(std::make_unique<Lu>());
    suite.push_back(std::make_unique<Fir>());
    suite.push_back(std::make_unique<Fft>());
    return suite;
}

} // namespace liquid
