/**
 * @file
 * Stress programs for the liquid-range analysis: hand-built binaries
 * whose regions the facts-free verifier cannot close — the loop bound
 * lives in caller state (a register or a memory cell the scalarizer
 * never materializes into the region) or the dependence pair budget
 * runs dry — but whole-program value-range analysis can. Each case
 * defines label `fn` as the region entry and a `main` with hinted
 * calls, mirroring tests/abort_cases.hh, so the same source runs the
 * static verifier, the tool and the dynamic differential oracle.
 *
 * These are deliberately NOT part of makeSuite(): they stress the
 * analysis, not the paper's benchmark set.
 */

#ifndef LIQUID_WORKLOADS_RANGE_STRESS_HH
#define LIQUID_WORKLOADS_RANGE_STRESS_HH

#include <string>
#include <vector>

namespace liquid
{

/** One range-analysis stress program. */
struct RangeStressCase
{
    /** Case name; doubles as the test/JSON label. */
    const char *name;
    /** Why the facts-free verifier cannot close the region. */
    const char *blocker;
    /**
     * True: the range analysis must upgrade the region (Warn -> Ok via
     * entry facts, or a pair-budget Unknown discharged to Safe).
     * False: a negative control the analysis must NOT upgrade.
     */
    bool expectUpgrade;
    /** Assembly source; region entry is `fn`, driver is `main`. */
    std::string src;
};

/** The stress set (built once; sources are partly generated). */
const std::vector<RangeStressCase> &rangeStressCases();

} // namespace liquid

#endif // LIQUID_WORKLOADS_RANGE_STRESS_HH
