/**
 * @file
 * Reference interpreter for vector-IR kernels.
 *
 * Executes a vir::Kernel directly over simulated memory with
 * whole-vector semantics, independent of the scalarizer and the
 * pipeline model. Serves as the golden model for every workload: all
 * three lowerings (baseline scalar, Liquid, native SIMD) must leave
 * output arrays byte-identical to this interpreter.
 *
 * Kernel legality (checked by the scalarizer) guarantees the result is
 * independent of the vector width used here; the interpreter uses the
 * kernel's compiled maxWidth.
 */

#ifndef LIQUID_WORKLOADS_VIR_INTERP_HH
#define LIQUID_WORKLOADS_VIR_INTERP_HH

#include <vector>

#include "asm/program.hh"
#include "memory/main_memory.hh"
#include "scalarizer/vir.hh"

namespace liquid
{

/** Execute one kernel call; returns final accumulator values. */
std::vector<Word> interpretKernel(const vir::Kernel &kernel,
                                  const Program &prog, MainMemory &mem);

} // namespace liquid

#endif // LIQUID_WORKLOADS_VIR_INTERP_HH
