#include "workloads/range_stress.hh"

#include <sstream>

namespace liquid
{

namespace
{

/**
 * Loop bound passed in a register: main pins r5 = 64, fn loops on
 * `cmp r1, r5`. Without entry facts the mirror walk hits a branch on
 * runtime data (Warn); the interprocedural analysis proves r5 = 64
 * over the single call site and the walk turns concrete.
 */
std::string
liveinBoundSrc()
{
    return R"(.words a 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32 33 34 35 36 37 38 39 40 41 42 43 44 45 46 47 48 49 50 51 52 53 54 55 56 57 58 59 60 61 62 63 64
.data b 256

fn:
    mov r1, #0
loop:
    ldw r2, [a + r1]
    add r2, r2, #3
    stw [b + r1], r2
    add r1, r1, #1
    cmp r1, r5
    blt loop
    ret

main:
    mov r5, #64
    bl.simd fn
    halt
)";
}

/**
 * Loop bound round-trips through a memory cell in the caller: main
 * stores 64 into `nb`, reloads it into r5, then calls. (The load must
 * live in the caller — captured regions forbid non-indexed loads, and
 * indexed loads become per-lane values.) Proving r5 = 64 at entry
 * requires the abstract memory model: the strong store must survive
 * to the reload and the reload to the call at the joint fixpoint.
 */
std::string
cellBoundSrc()
{
    return R"(.words a 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32 33 34 35 36 37 38 39 40 41 42 43 44 45 46 47 48 49 50 51 52 53 54 55 56 57 58 59 60 61 62 63 64
.data b 256
.data nb 4

fn:
    mov r1, #0
loop:
    ldw r2, [a + r1]
    add r2, r2, #3
    stw [b + r1], r2
    add r1, r1, #1
    cmp r1, r5
    blt loop
    ret

main:
    mov r2, #64
    stw [nb], r2
    ldw r5, [nb]
    bl.simd fn
    halt
)";
}

/**
 * Pair-budget exhaustion: 9 input and 8 output arrays of n = 5888
 * words, ~32 instructions per iteration with a saturation idiom. The
 * mirror walk commits (under the step budget), but the all-widths
 * pairwise overlap test blows the 2^24 pair budget at width 16 and the
 * prover gives up at 9 distinct leaves — only the footprint/congruence
 * argument over the range facts discharges w16.
 */
std::string
pairBudgetSrc()
{
    constexpr unsigned n = 5888;
    std::ostringstream os;
    for (int arr = 0; arr < 9; ++arr) {
        os << ".words in" << arr;
        for (unsigned i = 0; i < n; ++i)
            os << ' ' << (i % 5 + 1);
        os << '\n';
    }
    for (int arr = 0; arr < 8; ++arr)
        os << ".data out" << arr << ' ' << n * 4 << '\n';
    os << R"(
fn:
    mov r1, #0
loop:
    ldw r4, [in0 + r1]
    ldw r2, [in1 + r1]
    ldw r3, [in2 + r1]
    mul r2, r2, r3
    ldw r3, [in3 + r1]
    mul r2, r2, r3
    ldw r3, [in4 + r1]
    mul r2, r2, r3
    ldw r3, [in5 + r1]
    mul r2, r2, r3
    ldw r3, [in6 + r1]
    mul r2, r2, r3
    ldw r3, [in7 + r1]
    mul r2, r2, r3
    ldw r3, [in8 + r1]
    mul r2, r2, r3
    add r2, r2, r4
    cmp r2, #32767
    movgt r2, #32767
    cmp r2, #-32768
    movlt r2, #-32768
    stw [out0 + r1], r2
    stw [out1 + r1], r2
    stw [out2 + r1], r2
    stw [out3 + r1], r2
    stw [out4 + r1], r2
    stw [out5 + r1], r2
    stw [out6 + r1], r2
    stw [out7 + r1], r2
    add r1, r1, #1
    cmp r1, #5888
    blt loop
    ret

main:
    bl.simd fn
    halt
)";
    return os.str();
}

/**
 * Negative control: two call sites pass different bounds, so the
 * joined entry value of r5 is the non-singleton [32, 64] and no
 * constant fact exists. The region must STAY Warn with facts on —
 * upgrading it would be unsound (the analysis would be inventing a
 * bound the program does not have).
 */
std::string
joinNegativeSrc()
{
    return R"(.words a 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32 33 34 35 36 37 38 39 40 41 42 43 44 45 46 47 48 49 50 51 52 53 54 55 56 57 58 59 60 61 62 63 64
.data b 256

fn:
    mov r1, #0
loop:
    ldw r2, [a + r1]
    add r2, r2, #3
    stw [b + r1], r2
    add r1, r1, #1
    cmp r1, r5
    blt loop
    ret

main:
    mov r5, #64
    bl.simd fn
    mov r5, #32
    bl.simd fn
    halt
)";
}

/**
 * 32-bit wraparound: r2 is the *known* non-constant interval
 * [65536, 65543] (const live-in plus the induction variable — a load
 * would go to top and mask the mutation), so squaring it overflows
 * the 32-bit word while the abstract square [2^32, ...] lies entirely
 * above INT32_MAX. The sound transfer widens to the signed width top
 * (keeping only the power-of-two stride); the SabWrapClamp mutation
 * clamps into top32 — an empty interval here — and the differential
 * oracle must observe the dynamically wrapped value escaping it.
 */
std::string
wrapSrc()
{
    return R"(.data outw 32

fn:
    mov r1, #0
loop:
    add r2, r6, r1
    mul r2, r2, r2
    stw [outw + r1], r2
    add r1, r1, #1
    cmp r1, #8
    blt loop
    ret

main:
    mov r6, #65536
    bl.simd fn
    halt
)";
}

/**
 * Store-aliasing: the loop's store offset runs *downward* (r4 = 1,
 * then 0), so the one singleton pass through the body — the first
 * abstract iteration, before the loop join makes r4 non-singleton —
 * strongly updates nb+4, not nb. The store that dynamically clobbers
 * the nb cell (iteration 1, value 1) only ever executes under a
 * non-singleton abstract address. The sound analysis havocs memory
 * there and reads the reload as top; the SabStoreNoHavoc mutation
 * keeps the stale entry cell (r5 = 8) and the oracle must observe the
 * dynamically clobbered value (1) escaping it.
 */
std::string
storeAliasSrc()
{
    return R"(.data nb 8

fn:
    mov r1, #0
    mov r4, #1
loop:
    stw [nb + r4], r1
    sub r4, r4, #1
    add r1, r1, #1
    cmp r1, #2
    blt loop
    ldw r5, [nb]
    ret

main:
    mov r2, #8
    stw [nb], r2
    bl.simd fn
    halt
)";
}

} // namespace

const std::vector<RangeStressCase> &
rangeStressCases()
{
    static const std::vector<RangeStressCase> cases = {
        {"rs_livein_bound",
         "loop bound is caller state (branch on runtime data)", true,
         liveinBoundSrc()},
        {"rs_cell_bound",
         "loop bound flows through a memory cell", true,
         cellBoundSrc()},
        {"rs_pair_budget",
         "pairwise overlap tests exceed the budget at width 16", true,
         pairBudgetSrc()},
        {"rs_join_negative",
         "call sites disagree on the bound (no constant fact)", false,
         joinNegativeSrc()},
        {"rs_wrap",
         "32-bit wraparound oracle probe (closed region)", false,
         wrapSrc()},
        {"rs_store_alias",
         "store aliases the reloaded bound cell (oracle probe)", false,
         storeAliasSrc()},
    };
    return cases;
}

} // namespace liquid
