/**
 * @file
 * Workload framework: each workload mirrors one benchmark from the
 * paper's evaluation suite (SPECfp 92/95/2000, MediaBench, and signal
 * processing kernels — see DESIGN.md, substitution 3). A workload
 * supplies input data, a set of SIMD hot-loop kernels in vector IR, and
 * driver parameters; the framework builds complete programs for the
 * three execution modes and provides a golden-model run.
 */

#ifndef LIQUID_WORKLOADS_WORKLOAD_HH
#define LIQUID_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "memory/main_memory.hh"
#include "scalarizer/scalarizer.hh"
#include "scalarizer/vir.hh"

namespace liquid
{

/** One benchmark. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name, e.g. "171.swim". */
    virtual std::string name() const = 0;

    /** Outer iterations: each calls every kernel callsPerRep() times. */
    unsigned
    reps() const
    {
        return repsOverride_ ? repsOverride_ : defaultReps();
    }

    /** Override the outer iteration count (amortization studies). */
    void setReps(unsigned reps) { repsOverride_ = reps; }

    virtual unsigned defaultReps() const { return 4; }

    /**
     * Back-to-back calls of each kernel per outer iteration — the
     * MPEG2 codecs call their 8-element block loops consecutively,
     * which is why the paper's Table 6 shows sub-300-cycle gaps only
     * for them.
     */
    virtual unsigned callsPerRep() const { return 1; }

    /**
     * Iterations of non-vectorizable scalar work per outer iteration
     * (shapes the SIMD-izable fraction S of Amdahl's law, which the
     * paper's Figure 6 speedups depend on).
     */
    virtual unsigned scalarWorkIters() const { return 200; }

    /** Allocate and initialize this workload's data arrays. */
    virtual void setupData(Program &prog) const = 0;

    /** The SIMD hot loops, in vector IR. */
    virtual std::vector<vir::Kernel> makeKernels() const = 0;

    /** Output arrays to verify: (symbol, length in words). */
    virtual std::vector<std::pair<std::string, unsigned>>
    outputs() const = 0;

    // ---- framework-provided -----------------------------------------------

    /** A built program plus per-kernel emission statistics. */
    struct Build
    {
        Program prog;
        std::vector<EmitResult> kernels;
        /** Entry addresses of the outlined kernels (empty if inline). */
        std::vector<Addr> kernelEntries;
    };

    /** Build the program for one execution mode. */
    Build build(EmitOptions::Mode mode, unsigned width = 8,
                bool hinted = true) const;

    /**
     * Golden run: interpret every kernel reps() times over @p mem
     * (freshly loaded from @p build's program) and record accumulator
     * results exactly as the driver does.
     */
    void goldenRun(const Build &build, MainMemory &mem) const;

    /** Name of the array recording kernel @p k / accumulator @p a. */
    std::string accResArray(unsigned k, unsigned a) const;

    /**
     * Read one output array (declared by outputs(), plus accumulator
     * result arrays) from a finished run.
     */
    static std::vector<Word> readArray(const Program &prog,
                                       const MainMemory &mem,
                                       const std::string &name,
                                       unsigned words);

    /** All output arrays including accumulator results. */
    std::vector<std::pair<std::string, unsigned>>
    allOutputs() const;

  private:
    unsigned repsOverride_ = 0;
};

/** The fifteen-benchmark suite from the paper's Section 5. */
std::vector<std::unique_ptr<Workload>> makeSuite();

/** Deterministic data helpers for workload setup. */
std::vector<Word> randomWords(const std::string &seed, unsigned count,
                              std::int32_t lo, std::int32_t hi);
std::vector<Word> randomFloats(const std::string &seed, unsigned count,
                               float lo, float hi);

} // namespace liquid

#endif // LIQUID_WORKLOADS_WORKLOAD_HH
