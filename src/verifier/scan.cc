#include "verifier/scan.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "translator/abort_reason.hh"
#include "verifier/poly.hh"

namespace liquid
{

namespace
{

Severity
maxSeverity(Severity a, Severity b)
{
    return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b)
               ? a
               : b;
}

/** Reachable instruction indices inside one natural loop's body. */
std::vector<int>
loopBodyInsts(const RegionCfg &cfg, const CfgLoop &loop)
{
    const auto &blocks = cfg.blocks();
    std::vector<int> body;
    if (loop.headBlock < 0 || loop.latchBlock < 0)
        return body;
    const int first =
        blocks[static_cast<std::size_t>(loop.headBlock)].first;
    const int last =
        blocks[static_cast<std::size_t>(loop.latchBlock)].last;
    for (const int i : cfg.instructions()) {
        if (i >= first && i <= last)
            body.push_back(i);
    }
    return body;
}

/**
 * Identify the loop's induction variable: the unique register with
 * exactly one definition in the body, stepped by an immediate
 * add/sub of itself, that the loop's exit compare consumes.
 */
RegSet
findLoopIvs(const Program &prog, const std::vector<int> &body)
{
    const auto &code = prog.code();
    std::map<unsigned, unsigned> defCount;
    std::set<unsigned> stepped;
    std::set<unsigned> compared;
    for (const int i : body) {
        const Inst &inst = code[static_cast<std::size_t>(i)];
        const InstEffects fx = instEffects(inst);
        for (const RegId def : fx.defs.regs())
            ++defCount[def.flat()];
        if ((inst.op == Opcode::Add || inst.op == Opcode::Sub) &&
            inst.hasImm && inst.dst.isValid() &&
            inst.dst == inst.src1)
            stepped.insert(inst.dst.flat());
        if (inst.op == Opcode::Cmp) {
            if (inst.src1.isValid())
                compared.insert(inst.src1.flat());
            if (!inst.hasImm && inst.src2.isValid())
                compared.insert(inst.src2.flat());
        }
    }
    RegSet ivs;
    for (const unsigned flat : stepped) {
        if (defCount[flat] == 1 && compared.count(flat))
            ivs.add(RegId::fromFlat(flat));
    }
    return ivs;
}

} // namespace

Severity
ScanRegion::overallVerdict() const
{
    if (!candidate)
        return contractVerdict;
    // The region's fate is its best width (the dynamic translator
    // lands there through the fallback ladder), floored by any
    // contract finding.
    Severity best = Severity::Error;
    for (const WidthPrediction &p : predictions) {
        if (static_cast<std::uint8_t>(p.report.verdict) <
            static_cast<std::uint8_t>(best))
            best = p.report.verdict;
    }
    if (predictions.empty())
        best = Severity::Ok;
    return maxSeverity(contractVerdict, best);
}

unsigned
ScanReport::candidateCount() const
{
    unsigned n = 0;
    for (const ScanRegion &r : regions)
        n += r.candidate ? 1 : 0;
    return n;
}

bool
ScanReport::anyError() const
{
    return std::any_of(regions.begin(), regions.end(),
                       [](const ScanRegion &r) {
                           return r.overallVerdict() == Severity::Error;
                       });
}

ScanReport
scanProgram(const Program &prog, const ScanOptions &opts)
{
    ScanReport rep;
    const auto &code = prog.code();
    if (code.empty())
        return rep;

    // ---- 1-2. discovery + joint liveness fixpoint -------------------
    // Shared with the translation-validation prover, which needs the
    // same demanded-live-out contract (see liveness.hh).
    const ProgramLiveness pl = solveProgramLiveness(prog);
    const auto &cfgs = pl.cfgs;
    const auto &live = pl.live;
    const auto &demand = pl.demand;

    // ---- 3. per-function contract + prediction ----------------------
    for (const auto &[entry, fi] : pl.fns) {
        ScanRegion r;
        r.entryIndex = entry;
        r.entryLabel = prog.labelAt(entry);
        r.callSites = fi.callSites;
        r.hinted = fi.hinted;
        r.widthHint = fi.widthHint;

        const RegionCfg &cfg = cfgs.at(entry);
        r.blockCount = static_cast<unsigned>(cfg.blocks().size());
        r.loopCount = static_cast<unsigned>(cfg.loops().size());
        r.hasLoop = r.loopCount > 0;

        const Liveness &lv = live.at(entry);
        r.liveIn = lv.entryLiveIn();
        auto dit = demand.find(entry);
        if (dit != demand.end())
            r.liveOutDemanded = dit->second;

        auto diag = [&r](Severity sev, int index, std::string msg) {
            Diagnostic d;
            d.severity = sev;
            d.instIndex = index;
            d.message = std::move(msg);
            r.contractVerdict = maxSeverity(r.contractVerdict, sev);
            r.contractDiags.push_back(std::move(d));
        };

        if (!r.hasLoop) {
            diag(Severity::Warn, entry,
                 "no natural loop: nothing for the translator to "
                 "capture (discovered from the bl/ret convention "
                 "only)");
        }

        const auto dominators = blockDominators(cfg);
        for (const CfgLoop &loop : cfg.loops()) {
            if (!loopIsReducible(cfg, loop, dominators)) {
                r.irreducible = true;
                diag(Severity::Error, loop.backedgeIndex,
                     "irreducible loop: the back edge's target does "
                     "not dominate its source, so control enters the "
                     "loop body around its head — the translator's "
                     "single-entry capture cannot represent this");
            }
        }

        if (cfg.fallsOffEnd()) {
            diag(Severity::Warn, -1,
                 "a reachable path runs past the end of the program "
                 "text");
        }

        // Region-boundary contract: self-contained entry.
        RegSet vecLiveIn = r.liveIn.ofClass(RegClass::Vec);
        vecLiveIn |= r.liveIn.ofClass(RegClass::VFlt);
        const RegSet scalarLiveIn = r.liveIn.minus(vecLiveIn);
        if (!vecLiveIn.empty()) {
            diag(Severity::Error, entry,
                 "vector register(s) " + vecLiveIn.str() +
                     " live into the region: a scalar Liquid region "
                     "cannot consume vector caller state");
        }
        if (!scalarLiveIn.empty()) {
            diag(Severity::Warn, entry,
                 "region is not self-contained: reads " +
                     scalarLiveIn.str() +
                     " from the caller (the scalarizer emits regions "
                     "that initialize all state internally)");
        }

        // Results must escape through scalar registers only.
        if (r.liveOutDemanded.anyVector()) {
            diag(Severity::Error, entry,
                 "vector register(s) escape the region live: " +
                     r.liveOutDemanded.str() +
                     " are read by a caller after the bl");
        }

        // Induction variables stay private to the region.
        for (const CfgLoop &loop : cfg.loops()) {
            const auto body = loopBodyInsts(cfg, loop);
            const RegSet ivs = findLoopIvs(prog, body);
            r.ivRegs |= ivs;
            if (r.hasLoop && ivs.empty() && !r.irreducible) {
                diag(Severity::Warn, loop.backedgeIndex,
                     "loop has no isolated induction variable "
                     "(single immediate-stepped register feeding the "
                     "exit compare)");
            }
            for (const RegId iv : ivs.regs()) {
                if (r.liveIn.contains(iv)) {
                    diag(Severity::Warn, entry,
                         "induction variable " + regName(iv) +
                             " enters the region live: its initial "
                             "value is caller state");
                }
                if (r.liveOutDemanded.contains(iv)) {
                    diag(Severity::Warn, loop.backedgeIndex,
                         "induction variable " + regName(iv) +
                             " escapes the region: a caller reads it "
                             "after the bl");
                }
            }

            // No spill-like traffic inside the loop body: every
            // load/store must progress with an index register.
            for (const int i : body) {
                const Inst &inst = code[static_cast<std::size_t>(i)];
                if (inst.isMem() && !inst.mem.index.isValid()) {
                    diag(Severity::Warn, i,
                         "loop-invariant (spill-like) memory traffic "
                         "inside the loop body: " + inst.toString());
                }
            }
        }

        r.candidate =
            r.hasLoop && r.contractVerdict != Severity::Error;

        if (opts.ranges && opts.ranges->sound)
            r.tripCountBound = opts.ranges->tripBound(entry);

        // ---- prediction stage ---------------------------------------
        if (r.candidate && opts.predict) {
            for (const unsigned w : opts.widths) {
                VerifyOptions vopts;
                vopts.config = opts.config;
                vopts.config.simdWidth = w;
                vopts.widthFallback = opts.widthFallback;
                vopts.dep = opts.dep;
                vopts.prove = opts.prove;
                vopts.ranges = opts.ranges;
                WidthPrediction p;
                p.requestedWidth = w;
                // Deliberately no width hint: the scan runs without
                // scalarizer metadata.
                p.report = verifyRegion(prog, entry, vopts, 0);
                if (p.report.verdict == Severity::Ok &&
                    p.report.predictedSpeedup > r.bestSpeedup) {
                    r.bestSpeedup = p.report.predictedSpeedup;
                    r.bestWidth = p.report.predictedWidth;
                }
                r.predictions.push_back(std::move(p));
            }
            // One width-free recording walk answers "for which N?"
            // across the whole ladder and beyond.
            const PolyRegion poly =
                analyzePoly(prog, entry, opts.config, opts.dep);
            r.polyAnalyzed = true;
            r.polyUnbounded = poly.validity.structuralUnbounded;
            r.widthValidity = poly.validity.summary;
            r.polyOkWidths = poly.validity.okWidths;
        }

        rep.regions.push_back(std::move(r));
    }
    return rep;
}

std::string
formatScanRegion(const ScanRegion &region)
{
    std::ostringstream os;
    os << "fn ";
    if (!region.entryLabel.empty())
        os << region.entryLabel;
    else
        os << "@" << region.entryIndex;
    os << " [inst " << region.entryIndex << ", " << region.callSites
       << " call site(s)" << (region.hinted ? ", hinted" : "")
       << "]: " << severityName(region.overallVerdict());
    if (region.candidate && region.bestWidth) {
        os << " (best width " << region.bestWidth << ", predicted "
           << region.bestSpeedup << "x)";
    } else if (!region.candidate) {
        os << " (not a candidate)";
    }
    os << '\n';
    os << "  blocks=" << region.blockCount
       << " loops=" << region.loopCount
       << " liveIn=[" << region.liveIn.str() << "]"
       << " liveOut=[" << region.liveOutDemanded.str() << "]"
       << " iv=[" << region.ivRegs.str() << "]\n";
    if (!region.tripCountBound.isTop() && !region.tripCountBound.empty())
        os << "  proven trip-count bound: "
           << region.tripCountBound.str() << '\n';
    if (region.polyAnalyzed)
        os << "  width-validity: " << region.widthValidity << '\n';

    for (const Diagnostic &d : region.contractDiags) {
        os << "  contract " << severityName(d.severity);
        if (d.instIndex >= 0)
            os << " at inst " << d.instIndex;
        os << ": " << d.message << '\n';
    }
    for (const WidthPrediction &p : region.predictions) {
        const RegionReport &rr = p.report;
        os << "  w" << p.requestedWidth << ": "
           << severityName(rr.verdict);
        if (rr.verdict == Severity::Ok) {
            os << " binds w" << rr.predictedWidth << ", "
               << rr.predictedUcode << " ucode insts, speedup "
               << rr.predictedSpeedup << "x";
        } else if (rr.verdict == Severity::Error) {
            os << " " << abortReasonName(rr.reason) << " ("
               << abortReasonDescription(rr.reason) << ")";
        }
        if (!rr.proofVerdict.empty())
            os << " [proof: " << rr.proofVerdict << "]";
        os << '\n';
    }
    return os.str();
}

} // namespace liquid
