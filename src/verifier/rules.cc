#include "verifier/rules.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "cpu/exec.hh"
#include "isa/perm.hh"
#include "verifier/dataflow.hh"

namespace liquid
{

namespace
{

/** Analysis ceiling: more abstract steps than any sane region retires. */
constexpr unsigned long stepBudget = 200000;

/** Unwound when the mirrored automaton decides the dynamic abort. */
struct StaticAbort
{
    AbortReason reason;
    int index;
};

/** Unwound when a decision needs runtime state the analysis lacks. */
struct StaticUnknown
{
    std::string what;
    int index;
};

[[noreturn]] void
raiseAbort(AbortReason reason, int index)
{
    throw StaticAbort{reason, index};
}

/** Demand a concrete value; Top here means the verdict is runtime-bound. */
Word
need(const AbsVal &v, const char *what, int index)
{
    if (!v.known) {
        std::ostringstream os;
        os << what << " depends on runtime data";
        throw StaticUnknown{os.str(), index};
    }
    return v.value;
}

/**
 * Decision-for-decision mirror of Translator (translator.cc), fed
 * AbsRetire records instead of hardware retires. Structure, member
 * names and rule order intentionally match the dynamic translator so
 * the two stay diffable; deviations are commented.
 */
class StaticAutomaton
{
  public:
    StaticAutomaton(const Program &prog, const TranslatorConfig &config,
                    unsigned capture_width,
                    WidthCheckSink *poly = nullptr)
        : config_(config), prog_(prog), captureWidth_(capture_width),
          poly_(poly), regs_(4 * regsPerClass)
    {
    }

    /** Mirror of onRetire (the index is always valid statically). */
    void
    observe(const AbsRetire &info)
    {
        ++observedInsts_;
        if (mode_ == Mode::Verify)
            verify(info);
        else
            build(info);
    }

    /** Mirror of onCall while capturing: a bl retired in-region. */
    [[noreturn]] void
    observeCall(int index)
    {
        raiseAbort(AbortReason::NestedCall, index);
    }

    /** Mirror of onReturn: abort in a loop, otherwise commit. */
    void
    observeReturn(int index)
    {
        if (mode_ == Mode::Verify)
            raiseAbort(AbortReason::RetInsideLoop, index);
        commit(index);
    }

    unsigned observed() const { return observedInsts_; }
    unsigned committedUcode() const { return committedUcode_; }
    unsigned committedCvecs() const { return committedCvecs_; }
    unsigned loopsVerified() const { return loopsVerified_; }
    unsigned committedLoopUcode() const { return committedLoopUcode_; }
    unsigned itersTotal() const { return itersTotal_; }
    bool inLoop() const { return mode_ == Mode::Verify; }

  private:
    enum class Mode
    {
        Build,
        Verify,
    };

    struct RegState
    {
        enum class Kind : std::uint8_t
        {
            Unknown,
            Scalar,
            IndVar,
            Vector,
            VecValues,
        };
        Kind kind = Kind::Unknown;
        unsigned elemSize = 4;
        int stream = -1;
        int producerUcode = -1;
        RegId ivReg;
        std::int32_t ivStep = 1;
    };

    struct ValueStream
    {
        std::vector<Word> values;
        int producerUcode = -1;
        bool referenced = false;
    };

    struct UcodeSlot
    {
        Inst inst;
        bool collapseCandidate = false;
        bool keep = false;
        bool loopVerified = false;
        bool needsLoop = false;
        bool branchNeedsRemap = false;
    };

    struct Patch
    {
        enum class Kind
        {
            PermLoad,
            PermStore,
            CvecOrMask,
        };
        Kind kind;
        int ucodeIdx;
        int stream;
    };

    struct BuildNote
    {
        int stream = -1;
        bool checkAddr = false;
        bool isStore = false;
        Addr firstEa = 0;
        unsigned esize = 0;
        bool checkIv = false;
        Word ivFirst = 0;
        std::int32_t ivStep = 1;
    };

    struct IdiomState
    {
        int stage = 0;
        RegId reg;
        int defSlot = -1;
    };

    RegState &
    state(RegId reg)
    {
        return regs_[reg.flat()];
    }

    int
    newStream(int producer_ucode)
    {
        streams_.push_back(ValueStream{});
        streams_.back().producerUcode = producer_ucode;
        return static_cast<int>(streams_.size()) - 1;
    }

    BuildNote &
    note(int static_idx)
    {
        return notes_[static_idx];
    }

    int
    emit(Inst inst, int static_idx)
    {
        if (ucode_.size() >= config_.maxUcodeInsts)
            raiseAbort(AbortReason::UcodeOverflow, static_idx);
        UcodeSlot slot;
        slot.inst = std::move(inst);
        ucode_.push_back(std::move(slot));
        return static_cast<int>(ucode_.size()) - 1;
    }

    void
    build(const AbsRetire &info)
    {
        const Inst &inst = *info.inst;

        if (!ucodeStartOfStatic_.count(info.index)) {
            ucodeStartOfStatic_[info.index] =
                static_cast<int>(ucode_.size());
        }

        const DecodeClass dc = partialDecode(inst.op);
        switch (dc) {
          case DecodeClass::Vector:
            raiseAbort(AbortReason::VectorOpcode, info.index);
          case DecodeClass::Call:
            raiseAbort(AbortReason::NestedCall, info.index);
          case DecodeClass::Untranslatable:
            raiseAbort(AbortReason::UntranslatableOpcode, info.index);
          default:
            break;
        }

        if (handleIdiom(info))
            return;

        switch (dc) {
          case DecodeClass::Mov:
            buildMov(info);
            return;
          case DecodeClass::Cmp:
            buildCmp(info);
            return;
          case DecodeClass::Branch:
            buildBranch(info);
            return;
          case DecodeClass::Load:
            buildLoad(info);
            return;
          case DecodeClass::Store:
            buildStore(info);
            return;
          case DecodeClass::DataProc:
            buildDataProc(info);
            return;
          default:
            raiseAbort(AbortReason::UntranslatableOpcode, info.index);
        }
    }

    bool
    handleIdiom(const AbsRetire &info)
    {
        const Inst &inst = *info.inst;

        switch (idiom_.stage) {
          case 0: {
            if (inst.op != Opcode::Cmp || !inst.hasImm ||
                !inst.src1.isValid())
                return false;
            if (state(inst.src1).kind != RegState::Kind::Vector)
                return false;
            if (inst.imm != satMax)
                raiseAbort(AbortReason::VectorCompare, info.index);
            idiom_.stage = 1;
            idiom_.reg = inst.src1;
            idiom_.defSlot = state(inst.src1).producerUcode;
            if (idiom_.defSlot < 0)
                raiseAbort(AbortReason::IdiomNoProducer, info.index);
            return true;
          }
          case 1: {
            if (inst.op != Opcode::Mov || inst.cond != Cond::GT ||
                !inst.hasImm || inst.imm != satMax ||
                inst.dst != idiom_.reg)
                raiseAbort(AbortReason::IdiomShape, info.index);
            idiom_.stage = 2;
            return true;
          }
          case 2: {
            if (inst.op != Opcode::Cmp || !inst.hasImm ||
                inst.imm != satMin || inst.src1 != idiom_.reg)
                raiseAbort(AbortReason::IdiomShape, info.index);
            idiom_.stage = 3;
            return true;
          }
          case 3: {
            if (inst.op != Opcode::Mov || inst.cond != Cond::LT ||
                !inst.hasImm || inst.imm != satMin ||
                inst.dst != idiom_.reg)
                raiseAbort(AbortReason::IdiomShape, info.index);
            Inst &def = ucode_[static_cast<std::size_t>(
                                   idiom_.defSlot)].inst;
            if (def.op == Opcode::Vadd)
                def.op = Opcode::Vqadd;
            else if (def.op == Opcode::Vsub)
                def.op = Opcode::Vqsub;
            else
                raiseAbort(AbortReason::IdiomBadProducer, info.index);
            idiom_ = IdiomState{};
            return true;
          }
          default:
            raiseAbort(AbortReason::IdiomShape, info.index);
        }
    }

    void
    buildMov(const AbsRetire &info)
    {
        const Inst &inst = *info.inst;
        if (inst.cond != Cond::AL)
            raiseAbort(AbortReason::ConditionalMov, info.index);

        if (inst.hasImm) {
            RegState &s = state(inst.dst);
            s = RegState{};
            s.kind = RegState::Kind::IndVar;
            emit(inst, info.index);
            return;
        }

        const RegState &src = state(inst.src1);
        if (src.kind == RegState::Kind::Vector ||
            src.kind == RegState::Kind::VecValues ||
            src.kind == RegState::Kind::IndVar)
            raiseAbort(AbortReason::MovFromNonScalar, info.index);
        RegState &d = state(inst.dst);
        d = RegState{};
        d.kind = RegState::Kind::Scalar;
        emit(inst, info.index);
    }

    void
    buildLoad(const AbsRetire &info)
    {
        const Inst &inst = *info.inst;
        if (!inst.mem.index.isValid())
            raiseAbort(AbortReason::LoadWithoutIndex, info.index);

        const RegState &idxState = state(inst.mem.index);
        const OpInfo &op = inst.info();

        if (idxState.kind == RegState::Kind::IndVar) {
            // Rule 2.
            Inst vld = inst;
            vld.op = op.vectorEquiv;
            vld.dst = inst.dst.toVector();
            const int slot = emit(std::move(vld), info.index);

            RegState &d = state(inst.dst);
            d = RegState{};
            d.kind = RegState::Kind::Vector;
            d.elemSize = op.memElemSize;
            d.producerUcode = slot;

            const Addr ea =
                need(info.memAddr, "load address", info.index);
            BuildNote &n = note(info.index);
            n.checkAddr = true;
            n.firstEa = ea;
            n.esize = op.memElemSize;

            if (prog_.isReadOnly(ea)) {
                const Word value =
                    need(info.value, "constant-pool load", info.index);
                if (laneRepresentable(value)) {
                    d.stream = newStream(slot);
                    streams_[static_cast<std::size_t>(d.stream)]
                        .values.push_back(value);
                    n.stream = d.stream;
                    if (poly_ != nullptr)
                        poly_->onStreamSeed(d.stream, value);
                }
            }
            return;
        }

        if (idxState.kind == RegState::Kind::VecValues) {
            // Rule 3.
            Inst vld = inst;
            vld.op = op.vectorEquiv;
            vld.dst = inst.dst.toVector();
            vld.mem.index = idxState.ivReg;
            emit(std::move(vld), info.index);

            Inst vp = Inst::vperm(inst.dst.toVector(),
                                  inst.dst.toVector(),
                                  PermKind::SwapHalves, 2);
            const int pslot = emit(std::move(vp), info.index);
            patches_.push_back(
                Patch{Patch::Kind::PermLoad, pslot, idxState.stream});

            const int producer =
                streams_[static_cast<std::size_t>(idxState.stream)]
                    .producerUcode;
            if (producer >= 0)
                ucode_[static_cast<std::size_t>(producer)]
                    .collapseCandidate = true;

            RegState &d = state(inst.dst);
            d = RegState{};
            d.kind = RegState::Kind::Vector;
            d.elemSize = op.memElemSize;
            d.producerUcode = pslot;
            return;
        }

        raiseAbort(AbortReason::LoadBadIndex, info.index);
    }

    void
    buildStore(const AbsRetire &info)
    {
        const Inst &inst = *info.inst;
        if (!inst.mem.index.isValid())
            raiseAbort(AbortReason::StoreWithoutIndex, info.index);

        RegState &dataState = state(inst.src1);
        if (dataState.kind != RegState::Kind::Vector)
            raiseAbort(AbortReason::StoreScalarData, info.index);
        if (dataState.producerUcode >= 0)
            ucode_[static_cast<std::size_t>(dataState.producerUcode)]
                .keep = true;

        const RegState &idxState = state(inst.mem.index);
        const OpInfo &op = inst.info();
        const RegId vdata = inst.src1.toVector();

        if (idxState.kind == RegState::Kind::IndVar) {
            // Rule 4.
            Inst vst = inst;
            vst.op = op.vectorEquiv;
            vst.src1 = vdata;
            emit(std::move(vst), info.index);

            BuildNote &n = note(info.index);
            n.checkAddr = true;
            n.isStore = true;
            n.firstEa = need(info.memAddr, "store address", info.index);
            n.esize = op.memElemSize;
            return;
        }

        if (idxState.kind == RegState::Kind::VecValues) {
            // Rule 5.
            const RegId scratch(vdata.cls(), regsPerClass - 1);
            Inst vp = Inst::vperm(scratch, vdata, PermKind::SwapHalves, 2);
            const int pslot = emit(std::move(vp), info.index);
            patches_.push_back(
                Patch{Patch::Kind::PermStore, pslot, idxState.stream});

            Inst vst = inst;
            vst.op = op.vectorEquiv;
            vst.src1 = scratch;
            vst.mem.index = idxState.ivReg;
            emit(std::move(vst), info.index);

            const int producer =
                streams_[static_cast<std::size_t>(idxState.stream)]
                    .producerUcode;
            if (producer >= 0)
                ucode_[static_cast<std::size_t>(producer)]
                    .collapseCandidate = true;
            return;
        }

        raiseAbort(AbortReason::StoreBadIndex, info.index);
    }

    void
    buildCmp(const AbsRetire &info)
    {
        const Inst &inst = *info.inst;
        const RegState &s1 = state(inst.src1);
        if (s1.kind == RegState::Kind::Vector ||
            s1.kind == RegState::Kind::VecValues)
            raiseAbort(AbortReason::VectorCompare, info.index);
        if (!inst.hasImm) {
            const RegState &s2 = state(inst.src2);
            if (s2.kind == RegState::Kind::Vector ||
                s2.kind == RegState::Kind::VecValues)
                raiseAbort(AbortReason::VectorCompare, info.index);
        }
        emit(inst, info.index);
    }

    void
    buildBranch(const AbsRetire &info)
    {
        const Inst &inst = *info.inst;

        if (info.branchTaken && inst.target > info.index)
            raiseAbort(AbortReason::ForwardBranch, info.index);

        Inst b = inst;
        const int slot = emit(std::move(b), info.index);
        ucode_[static_cast<std::size_t>(slot)].branchNeedsRemap = true;

        if (info.branchTaken && inst.target <= info.index) {
            auto it = ucodeStartOfStatic_.find(inst.target);
            if (it == ucodeStartOfStatic_.end())
                raiseAbort(AbortReason::BackedgeTargetUnseen,
                           info.index);
            mode_ = Mode::Verify;
            loopStart_ = inst.target;
            loopEnd_ = info.index;
            expectIdx_ = loopStart_;
            itersDone_ = 1;
            loopUcodeStart_ = it->second;
        }
    }

    void
    buildDataProc(const AbsRetire &info)
    {
        const Inst &inst = *info.inst;
        RegState &s1 = state(inst.src1);
        RegState *s2 = inst.hasImm ? nullptr : &state(inst.src2);
        using Kind = RegState::Kind;

        auto isVec = [](const RegState *s) {
            return s && s->kind == Kind::Vector;
        };
        auto isScalarish = [](const RegState &s) {
            return s.kind == Kind::Scalar || s.kind == Kind::Unknown;
        };

        // Rule 9: reduction.
        if (!inst.hasImm && inst.dst == inst.src1 &&
            (isScalarish(s1) || s1.kind == Kind::IndVar) && isVec(s2)) {
            const Opcode red = inst.info().reductionEquiv;
            if (red == Opcode::Nop)
                raiseAbort(AbortReason::UnsupportedReduction,
                           info.index);
            if (s2->producerUcode >= 0)
                ucode_[static_cast<std::size_t>(s2->producerUcode)]
                    .keep = true;
            Inst vr = Inst::vred(red, inst.dst, inst.src2.toVector());
            const int slot = emit(std::move(vr), info.index);
            ucode_[static_cast<std::size_t>(slot)].needsLoop = true;
            RegState &d = state(inst.dst);
            d = RegState{};
            d.kind = Kind::Scalar;
            return;
        }

        // Rule 8: offsets + induction variable.
        if (inst.op == Opcode::Add && !inst.hasImm) {
            RegState *vals = nullptr;
            RegId iv_reg;
            if (s1.kind == Kind::IndVar && s2 &&
                s2->kind == Kind::Vector && s2->stream >= 0) {
                vals = s2;
                iv_reg = inst.src1;
            } else if (s2 && s2->kind == Kind::IndVar &&
                       s1.kind == Kind::Vector && s1.stream >= 0) {
                vals = &s1;
                iv_reg = inst.src2;
            }
            if (vals) {
                streams_[static_cast<std::size_t>(vals->stream)]
                    .referenced = true;
                const int stream = vals->stream;
                RegState &d = state(inst.dst);
                d = RegState{};
                d.kind = Kind::VecValues;
                d.stream = stream;
                d.ivReg = iv_reg;
                return;
            }
        }

        // Rule 10 (generalized): IV self-increment by a constant.
        if (inst.hasImm && inst.dst == inst.src1 &&
            s1.kind == Kind::IndVar && inst.op == Opcode::Add) {
            Inst step = inst;
            step.imm =
                inst.imm * static_cast<std::int32_t>(captureWidth_);
            const int slot = emit(std::move(step), info.index);
            ucode_[static_cast<std::size_t>(slot)].needsLoop = true;

            BuildNote &n = note(info.index);
            n.checkIv = true;
            n.ivFirst = need(info.value, "induction variable value",
                             info.index);
            n.ivStep = inst.imm;
            return;
        }

        // Vector cases.
        if (isVec(&s1) || isVec(s2)) {
            const Opcode vop = inst.info().vectorEquiv;
            if (vop == Opcode::Nop)
                raiseAbort(AbortReason::NoVectorEquivalent, info.index);

            if (isVec(&s1) && inst.hasImm) {
                // Category 2: vector op with immediate.
                Inst vi = inst;
                vi.op = vop;
                vi.dst = inst.dst.toVector();
                vi.src1 = inst.src1.toVector();
                const int slot = emit(std::move(vi), info.index);
                ucode_[static_cast<std::size_t>(slot)].needsLoop = true;
                if (s1.producerUcode >= 0)
                    ucode_[static_cast<std::size_t>(s1.producerUcode)]
                        .keep = true;
                RegState &d = state(inst.dst);
                d = RegState{};
                d.kind = Kind::Vector;
                d.producerUcode = slot;
                return;
            }

            if (isVec(&s1) && isVec(s2)) {
                const bool c1 = s1.stream >= 0;
                const bool c2 = s2->stream >= 0;
                if (c1 != c2) {
                    // Rule 7: vector-constant op.
                    RegState &cst = c1 ? s1 : *s2;
                    RegState &vec = c1 ? *s2 : s1;
                    streams_[static_cast<std::size_t>(cst.stream)]
                        .referenced = true;
                    Inst vc;
                    vc.op = vop;
                    vc.dst = inst.dst.toVector();
                    vc.src1 = (c1 ? inst.src2 : inst.src1).toVector();
                    vc.cvec = 0;
                    const int slot = emit(std::move(vc), info.index);
                    ucode_[static_cast<std::size_t>(slot)].needsLoop =
                        true;
                    patches_.push_back(Patch{Patch::Kind::CvecOrMask,
                                             slot, cst.stream});
                    const int producer =
                        streams_[static_cast<std::size_t>(cst.stream)]
                            .producerUcode;
                    if (producer >= 0)
                        ucode_[static_cast<std::size_t>(producer)]
                            .collapseCandidate = true;
                    if (vec.producerUcode >= 0)
                        ucode_[static_cast<std::size_t>(
                                   vec.producerUcode)].keep = true;
                    RegState &d = state(inst.dst);
                    d = RegState{};
                    d.kind = Kind::Vector;
                    d.producerUcode = slot;
                    return;
                }

                // Rule 6: plain data-parallel vector op.
                Inst vv = inst;
                vv.op = vop;
                vv.dst = inst.dst.toVector();
                vv.src1 = inst.src1.toVector();
                vv.src2 = inst.src2.toVector();
                const int slot = emit(std::move(vv), info.index);
                ucode_[static_cast<std::size_t>(slot)].needsLoop = true;
                if (s1.producerUcode >= 0)
                    ucode_[static_cast<std::size_t>(s1.producerUcode)]
                        .keep = true;
                if (s2->producerUcode >= 0)
                    ucode_[static_cast<std::size_t>(s2->producerUcode)]
                        .keep = true;
                RegState &d = state(inst.dst);
                d = RegState{};
                d.kind = Kind::Vector;
                d.elemSize = std::max(s1.elemSize, s2->elemSize);
                d.producerUcode = slot;
                return;
            }

            raiseAbort(AbortReason::VectorScalarMix, info.index);
        }

        if (s1.kind == Kind::VecValues ||
            (s2 && s2->kind == Kind::VecValues))
            raiseAbort(AbortReason::OffsetsInArithmetic, info.index);

        // Rule 11: scalar passthrough.
        if (s1.kind == Kind::IndVar || (s2 && s2->kind == Kind::IndVar))
            raiseAbort(AbortReason::IvArithmetic, info.index);
        emit(inst, info.index);
        RegState &d = state(inst.dst);
        d = RegState{};
        d.kind = Kind::Scalar;
    }

    void
    verify(const AbsRetire &info)
    {
        if (info.index != expectIdx_)
            raiseAbort(AbortReason::ShapeMismatch, info.index);

        const unsigned width = captureWidth_;
        const unsigned iter = itersDone_ + 1;
        const std::size_t elem = iter - 1;

        auto it = notes_.find(info.index);
        if (it != notes_.end()) {
            const BuildNote &n = it->second;
            if (n.stream >= 0 &&
                streams_[static_cast<std::size_t>(n.stream)].referenced) {
                auto &values =
                    streams_[static_cast<std::size_t>(n.stream)].values;
                const Word value = need(info.value, "constant-pool load",
                                        info.index);
                if (poly_ != nullptr) {
                    // Width-polymorphic mode: capture every lane and
                    // defer the push/compare decision to instantiate.
                    poly_->onStreamLane(info.index, n.stream, elem,
                                        value);
                    values.push_back(value);
                } else if (values.size() < width) {
                    if (!laneRepresentable(value))
                        raiseAbort(AbortReason::ValueTooWide,
                                   info.index);
                    values.push_back(value);
                } else if (value != values[elem % width]) {
                    raiseAbort(AbortReason::ValueMismatch, info.index);
                }
            }
            if (n.checkAddr &&
                need(info.memAddr, "stream address", info.index) !=
                    n.firstEa + static_cast<Addr>(elem * n.esize)) {
                raiseAbort(AbortReason::AddressMismatch, info.index);
            }
            if (n.checkIv &&
                need(info.value, "induction variable value",
                     info.index) !=
                    n.ivFirst + static_cast<Word>(elem) *
                                    static_cast<Word>(n.ivStep)) {
                raiseAbort(AbortReason::IvMismatch, info.index);
            }
        }

        if (info.index == loopEnd_) {
            ++itersDone_;
            if (info.branchTaken) {
                expectIdx_ = loopStart_;
            } else {
                finalizeLoop(info.index);
                mode_ = Mode::Build;
            }
            return;
        }
        ++expectIdx_;
    }

    void
    finalizeLoop(int index)
    {
        const unsigned width = captureWidth_;

        if (poly_ != nullptr)
            poly_->onTripCount(index, itersDone_);
        else if (itersDone_ < width || itersDone_ % width != 0)
            raiseAbort(AbortReason::TripCount, index);

        for (const auto &[store_idx, store_note] : notes_) {
            if (!store_note.isStore || !store_note.checkAddr)
                continue;
            if (store_idx < loopStart_ || store_idx > loopEnd_)
                continue;
            const Addr s0 = store_note.firstEa;
            for (const auto &[load_idx, load_note] : notes_) {
                if (load_note.isStore || !load_note.checkAddr)
                    continue;
                if (load_idx < loopStart_ || load_idx > loopEnd_)
                    continue;
                const Addr l0 = load_note.firstEa;
                const Addr l_end = l0 + itersDone_ * load_note.esize;
                const Addr s_end = s0 + itersDone_ * store_note.esize;
                if (s0 > l0 && s0 < l_end && s_end > l0)
                    raiseAbort(AbortReason::MemoryDependence, index);
            }
        }

        for (const Patch &p : patches_) {
            const auto &values =
                streams_[static_cast<std::size_t>(p.stream)].values;
            if (poly_ != nullptr) {
                // Record the lane count (and, for permutations, the
                // shape obligation); skip the width-bound constant
                // vector / mask / perm-CAM emission, whose effects are
                // verdict-irrelevant apart from the deferred checks.
                poly_->onLanes(index, p.stream, values.size());
                if (p.kind != Patch::Kind::CvecOrMask)
                    poly_->onPerm(index, p.stream,
                                  p.kind == Patch::Kind::PermStore);
                continue;
            }
            if (values.size() < width)
                raiseAbort(AbortReason::LanesIncomplete, index);

            if (p.kind == Patch::Kind::CvecOrMask) {
                unsigned period = width;
                for (unsigned cand = 1; cand < width; cand *= 2) {
                    bool ok = true;
                    for (unsigned i = 0; i < width && ok; ++i)
                        ok = values[i] == values[i % cand];
                    if (ok) {
                        period = cand;
                        break;
                    }
                }
                const bool mask_like = std::all_of(
                    values.begin(), values.begin() + width,
                    [](Word v) { return v == 0 || v == 0xFFFFFFFFu; });
                Inst &inst =
                    ucode_[static_cast<std::size_t>(p.ucodeIdx)].inst;
                if (mask_like && inst.op == Opcode::Vand) {
                    std::uint32_t bits = 0;
                    for (unsigned i = 0; i < period; ++i) {
                        if (values[i])
                            bits |= 1u << i;
                    }
                    inst.op = Opcode::Vmask;
                    inst.cvec = noCvec;
                    inst.maskBits = bits;
                    inst.maskBlock = static_cast<std::uint8_t>(
                        std::max(period, 1u));
                } else {
                    ConstVec cv;
                    cv.lanes.assign(values.begin(),
                                    values.begin() + period);
                    std::uint32_t id = 0;
                    for (; id < cvecs_.size(); ++id) {
                        if (cvecs_[id] == cv)
                            break;
                    }
                    if (id == cvecs_.size())
                        cvecs_.push_back(std::move(cv));
                    inst.cvec = id;
                }
                continue;
            }

            std::vector<std::int32_t> offsets;
            offsets.reserve(width);
            for (unsigned i = 0; i < width; ++i)
                offsets.push_back(static_cast<std::int32_t>(
                    static_cast<SWord>(values[i])));
            const auto match =
                permCamLookup(offsets, width, config_.permRepertoire);
            if (!match)
                raiseAbort(AbortReason::UnsupportedShuffle, index);

            Inst &inst =
                ucode_[static_cast<std::size_t>(p.ucodeIdx)].inst;
            inst.permKind = p.kind == Patch::Kind::PermStore
                                ? permInverse(match->kind)
                                : match->kind;
            inst.permBlock = static_cast<std::uint8_t>(match->block);
        }
        patches_.clear();

        for (std::size_t i = static_cast<std::size_t>(loopUcodeStart_);
             i < ucode_.size(); ++i)
            ucode_[i].loopVerified = true;

        ++loopsVerified_;
        itersTotal_ += itersDone_;
    }

    void
    commit(int index)
    {
        if (idiom_.stage != 0)
            raiseAbort(AbortReason::IdiomIncomplete, index);
        if (!patches_.empty())
            raiseAbort(AbortReason::UnfinalizedPatches, index);

        std::vector<int> new_index(ucode_.size(), -1);
        unsigned out = 0;
        unsigned loop_out = 0;
        for (std::size_t i = 0; i < ucode_.size(); ++i) {
            UcodeSlot &slot = ucode_[i];
            const bool drop = config_.collapseEnabled &&
                              slot.collapseCandidate && !slot.keep;
            if (drop)
                continue;
            if (slot.needsLoop && !slot.loopVerified)
                raiseAbort(AbortReason::VectorOutsideLoop, index);
            if (slot.loopVerified)
                ++loop_out;
            new_index[i] = static_cast<int>(out);
            ++out;
        }

        for (std::size_t i = 0; i < ucode_.size(); ++i) {
            if (new_index[i] < 0 || !ucode_[i].branchNeedsRemap)
                continue;
            auto it = ucodeStartOfStatic_.find(ucode_[i].inst.target);
            if (it == ucodeStartOfStatic_.end())
                raiseAbort(AbortReason::DanglingBranch, index);
            int target = -1;
            for (std::size_t j = static_cast<std::size_t>(it->second);
                 j < ucode_.size(); ++j) {
                if (new_index[j] >= 0) {
                    target = new_index[j];
                    break;
                }
            }
            if (target < 0)
                raiseAbort(AbortReason::DanglingBranch, index);
        }

        committedUcode_ = out;
        committedLoopUcode_ = loop_out;
        committedCvecs_ = static_cast<unsigned>(cvecs_.size());
    }

    TranslatorConfig config_;
    const Program &prog_;

    Mode mode_ = Mode::Build;
    unsigned observedInsts_ = 0;
    unsigned captureWidth_;
    WidthCheckSink *poly_ = nullptr;

    std::vector<RegState> regs_;
    std::vector<ValueStream> streams_;
    std::vector<UcodeSlot> ucode_;
    std::vector<ConstVec> cvecs_;
    std::vector<Patch> patches_;
    std::map<int, int> ucodeStartOfStatic_;
    std::map<int, BuildNote> notes_;
    IdiomState idiom_;

    int loopStart_ = -1;
    int loopEnd_ = -1;
    int expectIdx_ = -1;
    unsigned itersDone_ = 0;
    int loopUcodeStart_ = -1;
    unsigned loopsVerified_ = 0;

    unsigned committedUcode_ = 0;
    unsigned committedLoopUcode_ = 0;
    unsigned committedCvecs_ = 0;
    unsigned itersTotal_ = 0;
};

} // namespace

StaticOutcome
analyzeRegion(const Program &prog, int entry_index,
              const TranslatorConfig &config, unsigned capture_width,
              const EntryFacts *facts, WidthCheckSink *poly)
{
    StaticOutcome out;
    StaticAutomaton automaton(prog, config, capture_width, poly);
    AbsMachine machine(prog, facts);
    std::set<int> visited;

    const auto &code = prog.code();
    int pc = entry_index;
    unsigned long steps = 0;

    try {
        for (;;) {
            if (++steps > stepBudget) {
                throw StaticUnknown{
                    "region exceeds the analysis step budget; the "
                    "dynamic outcome depends on how the loop "
                    "terminates",
                    pc};
            }
            if (pc < 0 || pc >= static_cast<int>(code.size())) {
                throw StaticUnknown{
                    "control flow leaves the program text", pc};
            }
            const Inst &inst = code[pc];
            visited.insert(pc);

            if (inst.op == Opcode::Bl)
                automaton.observeCall(pc);

            if (inst.op == Opcode::Ret) {
                automaton.observeReturn(pc);
                out.verdict = Severity::Ok;
                out.ucodeInsts = automaton.committedUcode();
                out.cvecs = automaton.committedCvecs();
                out.loopsVerified = automaton.loopsVerified();
                out.ucodeLoopInsts = automaton.committedLoopUcode();
                out.loopIters = automaton.itersTotal();
                break;
            }

            Taken taken = Taken::No;
            const AbsRetire ri = machine.step(inst, pc, taken);
            if (inst.op == Opcode::B && taken == Taken::Unknown) {
                std::ostringstream os;
                os << "branch depends on runtime data";
                if (machine.lastCmpIndex() >= 0) {
                    os << " (flags set by the cmp at inst "
                       << machine.lastCmpIndex() << ")";
                }
                throw StaticUnknown{os.str(), pc};
            }
            automaton.observe(ri);

            if (inst.op == Opcode::B && ri.branchTaken)
                pc = inst.target;
            else
                ++pc;
        }
    } catch (const StaticAbort &a) {
        out.verdict = Severity::Error;
        out.reason = a.reason;
        out.reasonIndex = a.index;
    } catch (const StaticUnknown &u) {
        out.verdict = Severity::Warn;
        out.warnCondition = u.what;
        out.reasonIndex = u.index;
    }

    out.analyzedInsts = automaton.observed();
    out.visited.assign(visited.begin(), visited.end());
    out.factsUsed = machine.factsUsed();
    return out;
}

} // namespace liquid
