/**
 * @file
 * Width-polymorphic verification: one recording walk, a verdict that
 * is a predicate on N. See poly.hh for the exactness contract.
 */

#include "verifier/poly.hh"

#include <algorithm>
#include <numeric>
#include <optional>
#include <sstream>

#include "isa/perm.hh"
#include "translator/abort_reason.hh"
#include "verifier/cfg.hh"
#include "verifier/symexec.hh"
#include "verifier/verifier.hh"

namespace liquid
{

namespace
{

/** Probing past this width is pointless for any workload we model. */
constexpr unsigned maxHorizon = 4096;

bool
sabOn(unsigned mask, PolySabotage bit)
{
    return (mask & static_cast<unsigned>(bit)) != 0;
}

/** The recording sink: turns rules.cc's width checks into events. */
class Recorder : public WidthCheckSink
{
  public:
    explicit Recorder(PolyRegion &region) : region_(region) {}

    void
    onStreamSeed(int stream, Word value) override
    {
        if (region_.streams.size() <= static_cast<std::size_t>(stream))
            region_.streams.resize(
                static_cast<std::size_t>(stream) + 1);
        region_.streams[static_cast<std::size_t>(stream)]
            .values.push_back(value);
    }

    void
    onStreamLane(int inst_index, int stream, std::size_t elem,
                 Word value) override
    {
        PolyRegion::Event e;
        e.kind = PolyRegion::Event::Kind::StreamLane;
        e.instIndex = inst_index;
        e.stream = stream;
        e.elem = static_cast<std::uint32_t>(elem);
        e.value = value;
        region_.events.push_back(e);
        region_.streams[static_cast<std::size_t>(stream)]
            .values.push_back(value);
    }

    void
    onTripCount(int inst_index, unsigned iters) override
    {
        PolyRegion::Event e;
        e.kind = PolyRegion::Event::Kind::TripCount;
        e.instIndex = inst_index;
        e.iters = iters;
        region_.events.push_back(e);
    }

    void
    onLanes(int inst_index, int stream, std::size_t observed) override
    {
        PolyRegion::Event e;
        e.kind = PolyRegion::Event::Kind::Lanes;
        e.instIndex = inst_index;
        e.stream = stream;
        e.observed = static_cast<std::uint32_t>(observed);
        region_.events.push_back(e);
    }

    void
    onPerm(int inst_index, int stream, bool is_store) override
    {
        PolyRegion::Event e;
        e.kind = PolyRegion::Event::Kind::Perm;
        e.instIndex = inst_index;
        e.stream = stream;
        e.isStore = is_store;
        region_.events.push_back(e);
    }

  private:
    PolyRegion &region_;
};

bool
depOverlaps(const DepEvent &a, const DepEvent &b)
{
    return a.ea < b.ea + b.size && b.ea < a.ea + a.size;
}

/**
 * The per-width group scan analyzeDeps runs, replayed on the recorded
 * trace at symbolic-instantiation time. Pair enumeration order matches
 * analyzeDeps exactly: loops ascending, store events ascending, their
 * partners ascending — within one group the two iteration orders
 * coincide because group runs are contiguous. The sabotage knobs seed
 * the --sabotage bugs into this evaluator.
 */
struct DepScanHit
{
    bool unsafe = false;
    DepPair pair;
};

DepScanHit
scanDepsAt(const PolyDeps &deps, unsigned n, unsigned sabotage)
{
    DepScanHit hit;
    std::vector<std::vector<const DepEvent *>> perLoop(
        deps.loopsAnalyzed);
    for (const DepEvent &e : deps.events)
        perLoop[static_cast<std::size_t>(e.loop)].push_back(&e);

    for (const auto &evs : perLoop) {
        for (std::size_t i = 0; i < evs.size(); ++i) {
            const DepEvent &a = *evs[i];
            if (!a.isStore)
                continue;
            for (std::size_t j = 0; j < evs.size(); ++j) {
                if (i == j)
                    continue;
                const DepEvent &b = *evs[j];
                if (a.isStore && b.isStore && j < i)
                    continue;  // store pairs tested once
                if (!depOverlaps(a, b) || a.iter == b.iter)
                    continue;
                const unsigned dist = a.iter > b.iter
                                          ? a.iter - b.iter
                                          : b.iter - a.iter;
                const bool flips =
                    (a.iter < b.iter && a.pos > b.pos) ||
                    (b.iter < a.iter && b.pos > a.pos);
                if (!sabOn(sabotage, PolySabotage::FlipIgnore) &&
                    !flips)
                    continue;
                const bool sameGroup =
                    sabOn(sabotage, PolySabotage::GroupCollide)
                        ? dist < n
                        : a.iter / n == b.iter / n;
                if (!sameGroup)
                    continue;
                hit.unsafe = true;
                hit.pair.storeIndex = a.pos;
                hit.pair.otherIndex = b.pos;
                hit.pair.otherIsStore = b.isStore;
                hit.pair.distance = dist;
                hit.pair.addr = std::max(a.ea, b.ea);
                hit.pair.orderFlips = flips;
                return hit;
            }
        }
    }
    return hit;
}

/** Does any order-breaking carried pair exist at *some* width? */
bool
anyFlippingPair(const PolyDeps &deps)
{
    std::vector<std::vector<const DepEvent *>> perLoop(
        deps.loopsAnalyzed);
    for (const DepEvent &e : deps.events)
        perLoop[static_cast<std::size_t>(e.loop)].push_back(&e);
    for (const auto &evs : perLoop) {
        for (std::size_t i = 0; i < evs.size(); ++i) {
            const DepEvent &a = *evs[i];
            if (!a.isStore)
                continue;
            for (std::size_t j = 0; j < evs.size(); ++j) {
                if (i == j)
                    continue;
                const DepEvent &b = *evs[j];
                if (a.isStore && b.isStore && j < i)
                    continue;
                if (!depOverlaps(a, b) || a.iter == b.iter)
                    continue;
                const bool flips =
                    (a.iter < b.iter && a.pos > b.pos) ||
                    (b.iter < a.iter && b.pos > a.pos);
                if (flips)
                    return true;
            }
        }
    }
    return false;
}

/**
 * Symbolic carried distance between two affine accesses, derived with
 * symexec's Lane-mode address algebra: both addresses are expressed
 * as polynomials base + stride·iter over a shared iteration
 * parameter, and TermPool::affineDiff (the Lane-mode alias test)
 * reduces their difference to a constant byte delta when the strides
 * agree. delta / stride is then the iteration distance — the k in the
 * symbolic inequality `distance >= k implies safe for N <= k`.
 */
std::optional<unsigned>
symbolicCarriedDistance(const MemAccess &store, const MemAccess &other)
{
    if (store.strideBytes == 0 ||
        store.strideBytes != other.strideBytes)
        return std::nullopt;
    sym::TermPool pool;
    const sym::TermRef iter = pool.param("iter");
    auto addrPoly = [&](const MemAccess &a) {
        const sym::TermRef stride =
            pool.konst(static_cast<Word>(a.strideBytes));
        return pool.bin(Opcode::Add,
                        pool.konst(static_cast<Word>(a.firstEa)),
                        pool.bin(Opcode::Mul, stride, iter, false),
                        false);
    };
    const std::optional<SWord> delta =
        pool.affineDiff(addrPoly(store), addrPoly(other));
    if (!delta)
        return std::nullopt;
    const auto stride = static_cast<SWord>(store.strideBytes);
    if (*delta % stride != 0)
        return std::nullopt;
    const SWord d = *delta / stride;
    return static_cast<unsigned>(d < 0 ? -d : d);
}

/** Smallest p >= 1 with values[i] == values[i % p] for all i. */
unsigned
fundamentalPeriod(const std::vector<Word> &values)
{
    for (unsigned p = 1; p < values.size(); ++p) {
        bool ok = true;
        for (std::size_t i = p; i < values.size() && ok; ++i)
            ok = values[i] == values[i % p];
        if (ok)
            return p;
    }
    return values.empty() ? 1
                          : static_cast<unsigned>(values.size());
}

const MemAccess *
accessAt(const std::vector<MemAccess> &accesses, int inst_index)
{
    for (const MemAccess &a : accesses) {
        if (a.instIndex == inst_index)
            return &a;
    }
    return nullptr;
}

} // namespace

const char *
polySabotageName(PolySabotage s)
{
    switch (s) {
      case PolySabotage::None: return "none";
      case PolySabotage::GroupCollide: return "groupCollide";
      case PolySabotage::FlipIgnore: return "flipIgnore";
      case PolySabotage::TripDivisor: return "tripDivisor";
      case PolySabotage::TripEqual: return "tripEqual";
      case PolySabotage::StreamPeriod: return "streamPeriod";
    }
    return "none";
}

std::string
NConstraint::render() const
{
    std::ostringstream os;
    bool wrote = false;
    if (!cg.isTop() && cg.mod >= 2 && cg.rem == 0) {
        os << cg.mod << " | N";
        wrote = true;
    }
    if (!iv.isTop() && !iv.empty()) {
        if (wrote)
            os << " and ";
        if (iv.lo > 2 && iv.hi < INT64_MAX)
            os << iv.lo << " <= N <= " << iv.hi;
        else if (iv.hi < INT64_MAX)
            os << "N <= " << iv.hi;
        else
            os << "N >= " << iv.lo;
        wrote = true;
    }
    if (!wrote)
        os << "any N";
    if (!why.empty())
        os << " (" << why << ")";
    return os.str();
}

bool
PolyValidity::okAt(unsigned n) const
{
    if (n > horizon)
        return tail.verdict == Severity::Ok;
    return std::find(okWidths.begin(), okWidths.end(), n) !=
           okWidths.end();
}

PolyWidthOutcome
PolyRegion::instantiate(unsigned n, unsigned sabotage) const
{
    PolyWidthOutcome out;
    if (n < 2) {
        // Mirrors verifyRegion's bind-below-2 refusal.
        out.verdict = Severity::Warn;
        out.instIndex = entryIndex;
        out.note = "effective width below 2: the translator never "
                   "captures this region";
        return out;
    }

    auto fail = [&](AbortReason reason, int index) {
        out.verdict = Severity::Error;
        out.reason = reason;
        out.instIndex = index;
    };

    // Replay the width checks in recorded (= program) order; the
    // first failure is what the width-bound walk would abort with.
    std::vector<std::uint32_t> lanesSeen(streams.size(), 1);
    for (const Event &e : events) {
        switch (e.kind) {
          case Event::Kind::StreamLane: {
            auto &seen = lanesSeen[static_cast<std::size_t>(e.stream)];
            const auto &vals =
                streams[static_cast<std::size_t>(e.stream)].values;
            if (seen < n) {
                if (!laneRepresentable(e.value)) {
                    fail(AbortReason::ValueTooWide, e.instIndex);
                    return out;
                }
                ++seen;
            } else {
                const std::size_t idx =
                    sabOn(sabotage, PolySabotage::StreamPeriod)
                        ? 0
                        : e.elem % n;
                if (e.value != vals[idx]) {
                    fail(AbortReason::ValueMismatch, e.instIndex);
                    return out;
                }
            }
            break;
          }
          case Event::Kind::TripCount: {
            bool bad = sabOn(sabotage, PolySabotage::TripEqual)
                           ? e.iters <= n
                           : e.iters < n;
            if (!sabOn(sabotage, PolySabotage::TripDivisor))
                bad = bad || e.iters % n != 0;
            if (bad) {
                fail(AbortReason::TripCount, e.instIndex);
                return out;
            }
            break;
          }
          case Event::Kind::Lanes:
            if (e.observed < n) {
                fail(AbortReason::LanesIncomplete, e.instIndex);
                return out;
            }
            break;
          case Event::Kind::Perm: {
            const auto &vals =
                streams[static_cast<std::size_t>(e.stream)].values;
            std::vector<std::int32_t> offsets;
            offsets.reserve(n);
            for (unsigned i = 0; i < n; ++i)
                offsets.push_back(static_cast<std::int32_t>(
                    static_cast<SWord>(vals[i])));
            if (!permCamLookup(offsets, n, permRepertoire)) {
                fail(AbortReason::UnsupportedShuffle, e.instIndex);
                return out;
            }
            break;
          }
        }
    }

    // Width checks pass: the width-independent terminal decides.
    if (terminal.verdict == Severity::Error) {
        fail(terminal.reason, terminal.reasonIndex);
        if (terminal.reason == AbortReason::MemoryDependence &&
            deps.resolved) {
            // verifyRegion runs depcheck on interval-test aborts too
            // (the conservative-abort note); mirror its verdict.
            out.depRan = true;
            const DepScanHit hit = scanDepsAt(deps, n, sabotage);
            out.depKind = hit.unsafe ? WidthVerdict::Kind::Unsafe
                                     : WidthVerdict::Kind::Safe;
            out.pair = hit.pair;
        }
        return out;
    }
    if (terminal.verdict == Severity::Warn) {
        out.verdict = Severity::Warn;
        out.instIndex = terminal.reasonIndex;
        out.note = terminal.warnCondition;
        return out;
    }

    // Rules commit at this width; the dependence scan decides.
    out.depRan = true;
    if (!deps.analyzed) {
        out.depKind = WidthVerdict::Kind::Safe;
        return out;  // no loops: Ok
    }
    if (!deps.resolved) {
        out.verdict = Severity::Warn;
        out.depKind = WidthVerdict::Kind::Unknown;
        out.depReason = deps.unresolvedReason;
        out.instIndex = deps.unresolvedIndex;
        out.note = "memoryDependence: " + deps.unresolvedWhy;
        return out;
    }
    const DepScanHit hit = scanDepsAt(deps, n, sabotage);
    if (hit.unsafe) {
        out.verdict = Severity::Error;
        out.reason = AbortReason::MemoryDependence;
        out.depMiscompile = true;
        out.depKind = WidthVerdict::Kind::Unsafe;
        out.pair = hit.pair;
        out.instIndex = hit.pair.storeIndex;
        return out;
    }
    out.depKind = WidthVerdict::Kind::Safe;
    return out;
}

namespace
{

/** Render {2,4,8,16,...} compactly; detects the divisor pattern. */
std::string
renderOkSet(const std::vector<unsigned> &ok, unsigned horizon,
            const std::vector<unsigned> &trips)
{
    if (trips.size() == 1) {
        const unsigned t = trips[0];
        bool divisorSet = true;
        std::size_t k = 0;
        for (unsigned n = 2; n <= horizon && divisorSet; ++n) {
            const bool isOk = k < ok.size() && ok[k] == n;
            if (isOk)
                ++k;
            if (isOk != (n <= t && t % n == 0))
                divisorSet = false;
        }
        if (divisorSet && k == ok.size())
            return "N | " + std::to_string(t);
    }
    std::ostringstream os;
    os << "{";
    for (std::size_t i = 0; i < ok.size(); ++i)
        os << (i != 0 ? "," : "") << ok[i];
    os << "}";
    return os.str();
}

} // namespace

PolyRegion
analyzePoly(const Program &prog, int entry_index,
            const TranslatorConfig &config,
            const DepcheckOptions &depOpts)
{
    PolyRegion r;
    r.entryIndex = entry_index;
    r.entryLabel = prog.labelAt(entry_index);
    r.permRepertoire = config.permRepertoire;

    // One width-independent recording walk. The capture width passed
    // here scales only emitted IV strides (verdict-irrelevant).
    Recorder rec(r);
    r.terminal = analyzeRegion(prog, entry_index, config, 16,
                               depOpts.facts, &rec);

    const RegionCfg cfg = RegionCfg::build(prog, entry_index);
    r.deps = analyzePolyDeps(prog, entry_index, cfg, depOpts);

    // ---- validity set: probe to the data horizon ---------------------
    PolyValidity &v = r.validity;
    std::uint64_t need = 16;
    std::vector<unsigned> trips;
    for (const PolyRegion::Event &e : r.events) {
        switch (e.kind) {
          case PolyRegion::Event::Kind::StreamLane:
            need = std::max<std::uint64_t>(need, e.elem + 1);
            break;
          case PolyRegion::Event::Kind::TripCount:
            need = std::max<std::uint64_t>(need, e.iters);
            if (std::find(trips.begin(), trips.end(), e.iters) ==
                trips.end())
                trips.push_back(e.iters);
            break;
          case PolyRegion::Event::Kind::Lanes:
            need = std::max<std::uint64_t>(need, e.observed);
            break;
          case PolyRegion::Event::Kind::Perm:
            break;
        }
    }
    need = std::max<std::uint64_t>(need, r.deps.maxIter + 1);
    v.horizon = static_cast<unsigned>(
        std::min<std::uint64_t>(need, maxHorizon));
    v.tailExact = need <= maxHorizon;
    for (unsigned n = 2; n <= v.horizon; ++n) {
        if (r.instantiate(n).verdict == Severity::Ok)
            v.okWidths.push_back(n);
    }
    // Beyond the horizon every recorded check saturates (trip and
    // lane counts are exceeded, streams stay in capture mode, every
    // dependence pair shares group 0), so one probe is the whole tail.
    v.tail = r.instantiate(v.horizon + 1);

    // ---- structural view: trip data factored out ---------------------
    bool structural = r.terminal.verdict == Severity::Ok;
    if (structural) {
        // Streams must be genuinely periodic for lanes beyond the
        // observed data to repeat; the fundamental period becomes the
        // congruence constraint p | N.
        std::uint64_t periodLcm = 1;
        bool aperiodic = false;
        for (const PolyRegion::Stream &s : r.streams) {
            if (s.values.size() <= 1)
                continue;
            const unsigned p = fundamentalPeriod(s.values);
            if (p == s.values.size()) {
                aperiodic = true;
                continue;
            }
            periodLcm = std::lcm<std::uint64_t>(periodLcm, p);
        }
        bool permBound = false;
        for (const PolyRegion::Event &e : r.events)
            permBound |= e.kind == PolyRegion::Event::Kind::Perm;

        if (aperiodic || permBound) {
            structural = false;
            NConstraint c;
            c.iv = Interval::make(
                2, v.okWidths.empty()
                       ? 1
                       : static_cast<std::int64_t>(v.okWidths.back()));
            c.why = permBound ? "permutation repertoire"
                              : "aperiodic constant stream";
            v.constraints.push_back(std::move(c));
        } else if (periodLcm > 1) {
            NConstraint c;
            c.cg = Congruence::make(periodLcm, 0);
            c.why = "stream period";
            v.constraints.push_back(std::move(c));
        }

        if (!r.deps.analyzed) {
            // no loops, no carried dependences
        } else if (!r.deps.resolved) {
            structural = false;
            NConstraint c;
            c.iv = Interval::bottom();
            c.why = "unresolved dependence walk: " +
                    r.deps.unresolvedWhy;
            v.constraints.push_back(std::move(c));
        } else if (anyFlippingPair(r.deps)) {
            structural = false;
            // Name the symbolic distance bound when the first
            // offending pair is affine (Lane-mode address algebra).
            const DepScanHit wide =
                scanDepsAt(r.deps, v.horizon + 1, 0);
            NConstraint c;
            c.iv = Interval::make(
                2, v.okWidths.empty()
                       ? 1
                       : static_cast<std::int64_t>(v.okWidths.back()));
            std::ostringstream why;
            why << "carried distance " << wide.pair.distance;
            if (wide.unsafe) {
                const MemAccess *st =
                    accessAt(r.deps.accesses, wide.pair.storeIndex);
                const MemAccess *ot =
                    accessAt(r.deps.accesses, wide.pair.otherIndex);
                if (st != nullptr && ot != nullptr) {
                    const std::optional<unsigned> symd =
                        symbolicCarriedDistance(*st, *ot);
                    if (symd)
                        why << " (symbolic: |Δbase|/stride = "
                            << *symd << ")";
                }
            }
            c.why = why.str();
            v.constraints.push_back(std::move(c));
        }
    }
    v.structuralUnbounded = structural;

    // ---- one-line summary --------------------------------------------
    std::ostringstream os;
    if (r.terminal.verdict == Severity::Warn && v.okWidths.empty()) {
        os << "warn for all N: " << r.terminal.warnCondition;
    } else if (v.okWidths.empty()) {
        const PolyWidthOutcome two = r.instantiate(2);
        os << "error for all N";
        if (two.verdict == Severity::Error) {
            os << ": " << abortReasonName(two.reason);
            if (two.depMiscompile)
                os << " (depMiscompile, distance "
                   << two.pair.distance << ")";
        }
    } else if (v.structuralUnbounded) {
        os << "safe for all N";
        for (const NConstraint &c : v.constraints)
            os << " with " << c.render();
        os << " (observed trip: "
           << renderOkSet(v.okWidths, v.horizon, trips) << ")";
    } else {
        os << "safe for N in "
           << renderOkSet(v.okWidths, v.horizon, trips);
        // Detect the upward-closed failure pattern "error for N >= x".
        const unsigned last = v.okWidths.back();
        const PolyWidthOutcome after = r.instantiate(last + 1);
        bool upward = after.verdict == Severity::Error &&
                      v.tail.verdict == Severity::Error &&
                      v.tail.reason == after.reason;
        for (unsigned n = last + 1; upward && n <= v.horizon; ++n) {
            const PolyWidthOutcome o = r.instantiate(n);
            upward = o.verdict == Severity::Error &&
                     o.reason == after.reason;
        }
        if (upward) {
            os << "; error for N >= " << last + 1 << ": "
               << abortReasonName(after.reason);
            if (after.depMiscompile)
                os << " (depMiscompile, distance "
                   << after.pair.distance << ")";
        }
    }
    v.summary = os.str();
    return r;
}

namespace
{

std::string
describeOutcome(Severity sev, AbortReason reason, int index,
                bool miscompile)
{
    std::ostringstream os;
    os << severityName(sev) << "/" << abortReasonName(reason)
       << "@inst" << index << (miscompile ? " depMiscompile" : "");
    return os.str();
}

std::string
describePair(const DepPair &p)
{
    std::ostringstream os;
    os << "store@" << p.storeIndex << " vs "
       << (p.otherIsStore ? "store@" : "load@") << p.otherIndex
       << " dist " << p.distance << " addr 0x" << std::hex << p.addr
       << std::dec << (p.orderFlips ? " flips" : " inorder");
    return os.str();
}

} // namespace

PolyDiff
diffRegion(const Program &prog, int entry_index,
           const TranslatorConfig &config, unsigned sabotage)
{
    PolyDiff diff;
    diff.entryIndex = entry_index;
    diff.entryLabel = prog.labelAt(entry_index);

    const PolyRegion region = analyzePoly(prog, entry_index, config);

    for (const unsigned n : DepcheckResult::widths) {
        VerifyOptions vo;
        vo.config = config;
        vo.config.simdWidth = n;
        vo.widthFallback = false;
        vo.prove = false;
        vo.ranges = nullptr;
        const RegionReport rep = verifyRegion(prog, entry_index, vo, 0);

        // Budget exhaustion is the one concrete outcome the symbolic
        // replay does not model; exclude it from the contract.
        if (rep.depAnalyzed &&
            (rep.dep.verdictAt(n).reason ==
                 DepReason::PairBudgetAtWidth ||
             rep.dep.verdictAt(n).reason ==
                 DepReason::PairBudgetBefore))
            continue;

        const PolyWidthOutcome got = region.instantiate(n, sabotage);

        auto mismatch = [&](const std::string &field,
                            const std::string &expect,
                            const std::string &gotStr) {
            diff.mismatches.push_back(
                PolyMismatch{n, field, expect, gotStr});
        };

        if (rep.verdict != got.verdict || rep.reason != got.reason ||
            rep.depMiscompile != got.depMiscompile) {
            int expectIndex = -1;
            for (const Diagnostic &d : rep.diags) {
                if (d.severity == rep.verdict) {
                    expectIndex = d.instIndex;
                    break;
                }
            }
            mismatch("verdict",
                     describeOutcome(rep.verdict, rep.reason,
                                     expectIndex, rep.depMiscompile),
                     describeOutcome(got.verdict, got.reason,
                                     got.instIndex,
                                     got.depMiscompile));
            continue;
        }
        if (got.verdict == Severity::Error) {
            bool found = false;
            for (const Diagnostic &d : rep.diags) {
                if (d.severity == Severity::Error) {
                    found = d.reason == got.reason &&
                            d.instIndex == got.instIndex;
                    break;
                }
            }
            if (!found)
                mismatch("errorDiag", "error diag at matching inst",
                         describeOutcome(got.verdict, got.reason,
                                         got.instIndex,
                                         got.depMiscompile));
        }
        if (got.verdict == Severity::Warn) {
            bool found = false;
            for (const Diagnostic &d : rep.diags) {
                if (d.severity == Severity::Warn &&
                    d.instIndex == got.instIndex &&
                    d.message == got.note) {
                    found = true;
                    break;
                }
            }
            if (!found)
                mismatch("warnDiag",
                         "warn diag with matching index+message",
                         "inst " + std::to_string(got.instIndex) +
                             ": " + got.note);
        }
        if (rep.depAnalyzed) {
            const WidthVerdict &wv = rep.dep.verdictAt(n);
            if (!got.depRan) {
                mismatch("depRan", "dep verdict at width", "not run");
                continue;
            }
            if (wv.kind != got.depKind ||
                wv.reason != got.depReason) {
                mismatch("depVerdict",
                         std::string(depReasonName(wv.reason)),
                         depReasonName(got.depReason));
                continue;
            }
            if (wv.kind == WidthVerdict::Kind::Unsafe) {
                const DepPair &e = wv.pair;
                const DepPair &g = got.pair;
                if (e.storeIndex != g.storeIndex ||
                    e.otherIndex != g.otherIndex ||
                    e.otherIsStore != g.otherIsStore ||
                    e.distance != g.distance || e.addr != g.addr ||
                    e.orderFlips != g.orderFlips)
                    mismatch("depPair", describePair(e),
                             describePair(g));
            }
        }
    }
    return diff;
}

std::vector<PolyDiff>
diffProgram(const Program &prog, const TranslatorConfig &config,
            unsigned sabotage)
{
    std::vector<PolyDiff> out;
    std::vector<int> seen;
    for (const HintedCall &call : prog.hintedCalls()) {
        if (std::find(seen.begin(), seen.end(), call.target) !=
            seen.end())
            continue;
        seen.push_back(call.target);
        out.push_back(diffRegion(prog, call.target, config, sabotage));
    }
    return out;
}

} // namespace liquid
