#include "verifier/diagnostics.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace liquid
{

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Ok: return "ok";
      case Severity::Warn: return "warn";
      case Severity::Error: return "error";
    }
    return "?";
}

bool
ProgramReport::anyError() const
{
    return std::any_of(regions.begin(), regions.end(),
                       [](const RegionReport &r) {
                           return r.verdict == Severity::Error;
                       });
}

std::string
formatRegionReport(const RegionReport &report)
{
    std::ostringstream os;
    os << "region ";
    if (!report.entryLabel.empty())
        os << report.entryLabel;
    else
        os << "@" << report.entryIndex;
    os << " [inst " << report.entryIndex << "]: "
       << severityName(report.verdict);

    switch (report.verdict) {
      case Severity::Ok:
        os << " (width " << report.predictedWidth << ", "
           << report.predictedUcode << " ucode insts";
        if (report.predictedCvecs)
            os << ", " << report.predictedCvecs << " cvecs";
        os << ")";
        break;
      case Severity::Error:
        os << " (" << abortReasonName(report.reason) << " ["
           << reasonClassName(abortReasonClass(report.reason)) << "])";
        if (report.depMiscompile)
            os << " [silent miscompile: translator commits]";
        break;
      case Severity::Warn:
        break;
    }
    os << "  blocks=" << report.blockCount
       << " loops=" << report.loopCount
       << " analyzed=" << report.analyzedInsts << '\n';

    if (report.verdict == Severity::Ok && report.predictedSpeedup > 0) {
        os << "  cost: scalar " << report.predictedScalarCycles
           << " cyc, simd " << report.predictedSimdCycles
           << " cyc, speedup " << std::fixed << std::setprecision(2)
           << report.predictedSpeedup << "x\n";
        os.unsetf(std::ios::fixed);
    }
    if (report.depAnalyzed && report.dep.analyzed &&
        report.verdict == Severity::Ok && report.predictedWidth) {
        os << "  dep: " << report.dep.proofSummary(report.predictedWidth)
           << '\n';
    }
    if (!report.proofVerdict.empty()) {
        os << "  proof: " << report.proofVerdict << " ("
           << report.proofSummary << ")\n";
    }
    if (report.polyAnalyzed) {
        os << "  validity: " << report.polySummary << '\n';
    }
    if (!report.rangeFacts.empty() || report.rangeDischarged > 0) {
        os << "  range: " << report.rangeFacts.size()
           << " entry fact(s) consumed, " << report.rangeDischarged
           << " dep verdict(s) discharged\n";
    }

    for (const Diagnostic &d : report.diags) {
        os << "  " << severityName(d.severity);
        if (d.severity == Severity::Error)
            os << "[" << abortReasonName(d.reason) << "]";
        if (d.instIndex >= 0)
            os << " at inst " << d.instIndex;
        os << ": " << d.message << '\n';
    }
    return os.str();
}

} // namespace liquid
