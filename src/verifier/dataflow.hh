/**
 * @file
 * The verifier's dataflow engine: a constant-propagating abstract
 * interpretation of the scalar ISA over a two-point lattice
 * (Known(value) above Top).
 *
 * Why this is enough to be *precise* for Table-1 regions: everything
 * the translator's legality decisions consume is statically
 * determined —
 *  - induction variables start at `mov r, #c` and step by immediates,
 *    so their per-iteration values and every element-scaled effective
 *    address are compile-time constants;
 *  - value streams only form from loads of *read-only* data, whose
 *    contents are the program's initial image by definition (the
 *    constant-pool inspection);
 *  - loads from writable memory never influence legality except
 *    through condition flags, and a branch on such a value is exactly
 *    the runtime-dependent case the verifier reports as Warn.
 *
 * The machine mirrors Core::execute's observable effects (register
 * writes, flags, effective addresses, load values) without touching a
 * Core, a MainMemory, or any mutable state outside this object.
 */

#ifndef LIQUID_VERIFIER_DATAFLOW_HH
#define LIQUID_VERIFIER_DATAFLOW_HH

#include <array>
#include <string>
#include <vector>

#include "asm/program.hh"

namespace liquid
{

/** Constant lattice: a known word or Top (runtime-dependent). */
struct AbsVal
{
    bool known = false;
    Word value = 0;

    static AbsVal top() { return AbsVal{}; }
    static AbsVal of(Word v) { return AbsVal{true, v}; }
};

/**
 * Static analogue of RetireInfo: what the rule automaton would have
 * observed on the retirement bus, with Top where the value depends on
 * runtime state.
 */
struct AbsRetire
{
    const Inst *inst = nullptr;
    int index = -1;
    AbsVal value;           ///< load/mov/data-proc result, store data
    AbsVal memAddr;         ///< effective address of loads/stores
    bool branchTaken = false;  ///< branches; caller resolved it first
};

/** Tri-state branch outcome. */
enum class Taken : std::int8_t
{
    No = 0,
    Yes = 1,
    Unknown = -1,
};

/**
 * Facts a whole-program analysis proved about a region's entry
 * environment: registers pinned to one value over every call site,
 * and writable memory cells whose contents are known at entry. The
 * dataflow machine consults these where it would otherwise drop to
 * Top, so runtime-dependent Warns become concrete verdicts. Each hit
 * reports a human-readable `fact` naming the evidence (surfaced in
 * diagnostics as `range:` lines). Implemented by `RangeFacts`
 * (`range.hh`); null means no external analysis ran.
 */
class EntryFacts
{
  public:
    virtual ~EntryFacts() = default;

    /** Value of @p reg at region entry, if proven constant. */
    virtual bool entryReg(RegId reg, Word &value,
                          std::string &fact) const = 0;

    /**
     * Contents of the writable cell [addr, addr+size) at region
     * entry, if proven constant (read like MainMemory::readElem).
     */
    virtual bool readCell(Addr addr, unsigned size, bool sign_extend,
                          Word &value, std::string &fact) const = 0;
};

/** The abstract machine state for one region walk. */
class AbsMachine
{
  public:
    explicit AbsMachine(const Program &prog,
                        const EntryFacts *facts = nullptr)
        : prog_(prog), facts_(facts)
    {
        regs_.fill(AbsVal::top());
        if (facts_) {
            for (unsigned flat = 0; flat < regs_.size(); ++flat) {
                Word value = 0;
                std::string fact;
                if (facts_->entryReg(RegId::fromFlat(flat), value,
                                     fact)) {
                    regs_[flat] = AbsVal::of(value);
                    regFacts_[flat] = std::move(fact);
                }
            }
        }
    }

    /**
     * Apply one scalar instruction and produce its observation.
     * For branches, @p taken reports whether the branch is taken, not
     * taken, or statically undecidable; state is updated either way.
     * Bl/Ret never reach the machine (the walker owns control flow).
     */
    AbsRetire step(const Inst &inst, int index, Taken &taken);

    /** Instruction index of the last cmp (for Warn diagnostics). */
    int lastCmpIndex() const { return lastCmpIndex_; }

    bool flagsKnown() const { return flagsKnown_; }

    AbsVal reg(RegId id) const { return read(id); }

    /**
     * The external facts this walk actually consumed (deduplicated,
     * in first-use order) — the evidence a verdict now depends on.
     */
    const std::vector<std::string> &factsUsed() const
    {
        return factsUsed_;
    }

  private:
    AbsVal read(RegId id) const;
    void write(RegId id, AbsVal v);

    /**
     * Whether a store may have overwritten [addr, addr+size). Keeps
     * constant-pool reads honest if a region writes into data the
     * assembler marked read-only (or through an unknown address).
     */
    bool clobbered(Addr addr, unsigned size) const;

    /** Mirror of Core::memEA over the abstract registers. */
    AbsVal effectiveAddr(const Inst &inst) const;

    /** Whether inst's condition holds: tri-state. */
    Taken condHolds(Cond cond) const;

    struct StoreRange
    {
        Addr addr;
        unsigned size;
    };

    /** Record that @p fact fed a resolved value (deduplicated). */
    void noteFact(const std::string &fact) const;

    const Program &prog_;
    const EntryFacts *facts_ = nullptr;
    std::array<AbsVal, 4 * regsPerClass> regs_;
    std::array<std::string, 4 * regsPerClass> regFacts_;
    bool flagsKnown_ = false;
    int cmpState_ = 0;
    int lastCmpIndex_ = -1;
    std::vector<StoreRange> stores_;
    bool unknownStore_ = false;
    mutable std::vector<std::string> factsUsed_;
};

} // namespace liquid

#endif // LIQUID_VERIFIER_DATAFLOW_HH
