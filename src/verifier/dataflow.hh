/**
 * @file
 * The verifier's dataflow engine: a constant-propagating abstract
 * interpretation of the scalar ISA over a two-point lattice
 * (Known(value) above Top).
 *
 * Why this is enough to be *precise* for Table-1 regions: everything
 * the translator's legality decisions consume is statically
 * determined —
 *  - induction variables start at `mov r, #c` and step by immediates,
 *    so their per-iteration values and every element-scaled effective
 *    address are compile-time constants;
 *  - value streams only form from loads of *read-only* data, whose
 *    contents are the program's initial image by definition (the
 *    constant-pool inspection);
 *  - loads from writable memory never influence legality except
 *    through condition flags, and a branch on such a value is exactly
 *    the runtime-dependent case the verifier reports as Warn.
 *
 * The machine mirrors Core::execute's observable effects (register
 * writes, flags, effective addresses, load values) without touching a
 * Core, a MainMemory, or any mutable state outside this object.
 */

#ifndef LIQUID_VERIFIER_DATAFLOW_HH
#define LIQUID_VERIFIER_DATAFLOW_HH

#include <array>

#include "asm/program.hh"

namespace liquid
{

/** Constant lattice: a known word or Top (runtime-dependent). */
struct AbsVal
{
    bool known = false;
    Word value = 0;

    static AbsVal top() { return AbsVal{}; }
    static AbsVal of(Word v) { return AbsVal{true, v}; }
};

/**
 * Static analogue of RetireInfo: what the rule automaton would have
 * observed on the retirement bus, with Top where the value depends on
 * runtime state.
 */
struct AbsRetire
{
    const Inst *inst = nullptr;
    int index = -1;
    AbsVal value;           ///< load/mov/data-proc result, store data
    AbsVal memAddr;         ///< effective address of loads/stores
    bool branchTaken = false;  ///< branches; caller resolved it first
};

/** Tri-state branch outcome. */
enum class Taken : std::int8_t
{
    No = 0,
    Yes = 1,
    Unknown = -1,
};

/** The abstract machine state for one region walk. */
class AbsMachine
{
  public:
    explicit AbsMachine(const Program &prog) : prog_(prog)
    {
        regs_.fill(AbsVal::top());
    }

    /**
     * Apply one scalar instruction and produce its observation.
     * For branches, @p taken reports whether the branch is taken, not
     * taken, or statically undecidable; state is updated either way.
     * Bl/Ret never reach the machine (the walker owns control flow).
     */
    AbsRetire step(const Inst &inst, int index, Taken &taken);

    /** Instruction index of the last cmp (for Warn diagnostics). */
    int lastCmpIndex() const { return lastCmpIndex_; }

    bool flagsKnown() const { return flagsKnown_; }

    AbsVal reg(RegId id) const { return read(id); }

  private:
    AbsVal read(RegId id) const;
    void write(RegId id, AbsVal v);

    /**
     * Whether a store may have overwritten [addr, addr+size). Keeps
     * constant-pool reads honest if a region writes into data the
     * assembler marked read-only (or through an unknown address).
     */
    bool clobbered(Addr addr, unsigned size) const;

    /** Mirror of Core::memEA over the abstract registers. */
    AbsVal effectiveAddr(const Inst &inst) const;

    /** Whether inst's condition holds: tri-state. */
    Taken condHolds(Cond cond) const;

    struct StoreRange
    {
        Addr addr;
        unsigned size;
    };

    const Program &prog_;
    std::array<AbsVal, 4 * regsPerClass> regs_;
    bool flagsKnown_ = false;
    int cmpState_ = 0;
    int lastCmpIndex_ = -1;
    std::vector<StoreRange> stores_;
    bool unknownStore_ = false;
};

} // namespace liquid

#endif // LIQUID_VERIFIER_DATAFLOW_HH
