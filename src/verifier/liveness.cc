#include "verifier/liveness.hh"

#include <algorithm>
#include <sstream>

#include "verifier/fixpoint.hh"

namespace liquid
{

unsigned
RegSet::count() const
{
    unsigned n = 0;
    for (std::uint64_t b = bits_; b; b &= b - 1)
        ++n;
    return n;
}

std::vector<RegId>
RegSet::regs() const
{
    std::vector<RegId> out;
    for (unsigned flat = 0; flat < 64; ++flat) {
        if (bits_ & (1ull << flat))
            out.push_back(RegId::fromFlat(flat));
    }
    return out;
}

RegSet
RegSet::ofClass(RegClass cls) const
{
    RegSet out;
    for (const RegId reg : regs()) {
        if (reg.cls() == cls)
            out.add(reg);
    }
    return out;
}

bool
RegSet::anyVector() const
{
    for (const RegId reg : regs()) {
        if (reg.isVector())
            return true;
    }
    return false;
}

std::string
RegSet::str() const
{
    if (empty())
        return "-";
    std::ostringstream os;
    bool first = true;
    for (const RegId reg : regs()) {
        os << (first ? "" : ", ") << regName(reg);
        first = false;
    }
    return os.str();
}

InstEffects
instEffects(const Inst &inst)
{
    InstEffects fx;
    const OpInfo &info = inst.info();

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::B:
      case Opcode::Bl:
      case Opcode::Ret:
        return fx;

      case Opcode::Cmp:
        fx.uses.add(inst.src1);
        if (!inst.hasImm)
            fx.uses.add(inst.src2);
        return fx;

      case Opcode::Mov:
        if (!inst.hasImm)
            fx.uses.add(inst.src1);
        fx.defs.add(inst.dst);
        break;

      default:
        if (info.isLoad) {
            fx.uses.add(inst.mem.index);
            fx.defs.add(inst.dst);
        } else if (info.isStore) {
            fx.uses.add(inst.src1);
            fx.uses.add(inst.mem.index);
        } else {
            // Data processing, vperm/vmask, reductions. Reductions
            // carry dst through src1 (dst = red(dst, src2)), so the
            // uniform src1/src2 read covers them.
            fx.uses.add(inst.src1);
            if (!inst.hasImm)
                fx.uses.add(inst.src2);
            fx.defs.add(inst.dst);
        }
        break;
    }

    // A conditional write merges with the old value on the not-taken
    // path, so the destination is also an input.
    if (inst.cond != Cond::AL)
        fx.uses |= fx.defs;
    return fx;
}

namespace
{

/** Liveness transfer of one instruction, applied backward. */
void
transferInst(const Inst &inst, const std::map<int, FnSummary> &callees,
             RegSet &live)
{
    if (inst.op == Opcode::Bl) {
        auto it = callees.find(inst.target);
        if (it != callees.end()) {
            live = live.minus(it->second.mayDef);
            live |= it->second.liveIn;
        }
        return;
    }
    const InstEffects fx = instEffects(inst);
    live = live.minus(fx.defs);
    live |= fx.uses;
}

/** Backward liveness as a fixpoint.hh problem (lattice: RegSet). */
struct LivenessProblem
{
    using State = RegSet;
    static constexpr bool forward = false;

    const Program &prog;
    const RegionCfg &cfg;
    const std::map<int, FnSummary> &callees;
    const RegSet &exitLive;

    bool
    blockExits(std::size_t b) const
    {
        const BasicBlock &bb = cfg.blocks()[b];
        const Inst &last =
            prog.code()[static_cast<std::size_t>(bb.last)];
        if (last.op == Opcode::Ret || last.op == Opcode::Halt)
            return true;
        // A block with no successors whose path leaves the text.
        return bb.succs.empty();
    }

    State initial(std::size_t) const { return {}; }
    bool isBoundary(std::size_t b) const { return blockExits(b); }
    State boundary(std::size_t) const { return exitLive; }
    bool pinBoundary() const { return false; }
    State noEdges(std::size_t) const { return {}; }
    void join(State &acc, const State &other) const { acc |= other; }
    void edge(std::size_t, std::size_t, State &) const {}
    bool
    equal(const State &a, const State &b) const
    {
        return a == b;
    }
    bool widenAt(std::size_t) const { return false; }
    void widen(State &, const State &) const {}

    State
    transfer(std::size_t b, const State &out) const
    {
        const BasicBlock &bb = cfg.blocks()[b];
        RegSet in = out;
        for (int i = bb.last; i >= bb.first; --i)
            transferInst(prog.code()[static_cast<std::size_t>(i)],
                         callees, in);
        return in;
    }
};

/** Forward dominator sets as a fixpoint.hh problem (meet: AND). */
struct DominatorProblem
{
    using State = std::vector<bool>;
    static constexpr bool forward = true;

    std::size_t n;
    std::size_t entry;

    State initial(std::size_t) const { return State(n, true); }
    bool isBoundary(std::size_t b) const { return b == entry; }
    State boundary(std::size_t) const { return State(n, false); }
    bool pinBoundary() const { return true; }
    State noEdges(std::size_t) const { return State(n, false); }

    void
    join(State &acc, const State &other) const
    {
        for (std::size_t i = 0; i < n; ++i)
            acc[i] = acc[i] && other[i];
    }

    void edge(std::size_t, std::size_t, State &) const {}

    State
    transfer(std::size_t b, const State &gathered) const
    {
        State dom = gathered;
        dom[b] = true;
        return dom;
    }

    bool
    equal(const State &a, const State &b) const
    {
        return a == b;
    }

    bool widenAt(std::size_t) const { return false; }
    void widen(State &, const State &) const {}
};

} // namespace

Liveness
Liveness::run(const Program &prog, const RegionCfg &cfg,
              const std::map<int, FnSummary> &callees,
              const RegSet &exit_live)
{
    Liveness lv;
    const auto &blocks = cfg.blocks();
    const auto &code = prog.code();
    if (blocks.empty())
        return lv;

    // mayDef: every reachable def plus callee effects.
    for (const int i : cfg.instructions()) {
        const Inst &inst = code[static_cast<std::size_t>(i)];
        if (inst.op == Opcode::Bl) {
            auto it = callees.find(inst.target);
            if (it != callees.end())
                lv.mayDef_ |= it->second.mayDef;
            continue;
        }
        lv.mayDef_ |= instEffects(inst).defs;
    }

    // Per-block fixpoint: liveOut(b) = U liveIn(succ), region exits
    // (ret / falls off the text) see exit_live. The round-robin
    // solver lives in fixpoint.hh, shared with the range analysis.
    LivenessProblem problem{prog, cfg, callees, exit_live};
    FixSolution<RegSet> sol = fixSolve(cfg, problem);

    // Materialize per-instruction sets from the solved block frames.
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const BasicBlock &bb = blocks[b];
        RegSet live = sol.in[b];
        for (int i = bb.last; i >= bb.first; --i) {
            if (!cfg.contains(i))
                continue;
            lv.after_[i] = live;
            transferInst(code[static_cast<std::size_t>(i)], callees,
                         live);
            lv.before_[i] = live;
        }
    }

    const int entry_block = cfg.blockOf(cfg.entryIndex());
    if (entry_block >= 0)
        lv.entryLive_ =
            sol.out[static_cast<std::size_t>(entry_block)];
    return lv;
}

const RegSet &
Liveness::liveBefore(int index) const
{
    auto it = before_.find(index);
    return it == before_.end() ? emptySet_ : it->second;
}

const RegSet &
Liveness::liveAfter(int index) const
{
    auto it = after_.find(index);
    return it == after_.end() ? emptySet_ : it->second;
}

const RegSet &
Liveness::entryLiveIn() const
{
    return entryLive_;
}

std::vector<std::vector<bool>>
blockDominators(const RegionCfg &cfg)
{
    const std::size_t n = cfg.blocks().size();
    if (n == 0)
        return {};

    const std::size_t entry = static_cast<std::size_t>(
        std::max(cfg.blockOf(cfg.entryIndex()), 0));
    DominatorProblem problem{n, entry};
    FixSolution<std::vector<bool>> sol = fixSolve(cfg, problem);
    return std::move(sol.out);
}

bool
loopIsReducible(const RegionCfg &cfg, const CfgLoop &loop,
                const std::vector<std::vector<bool>> &dominators)
{
    (void)cfg;
    if (loop.headBlock < 0 || loop.latchBlock < 0)
        return false;
    const auto &latch_dom =
        dominators[static_cast<std::size_t>(loop.latchBlock)];
    return latch_dom[static_cast<std::size_t>(loop.headBlock)];
}

RegSet
ProgramLiveness::demandAt(int entry_index) const
{
    auto it = demand.find(entry_index);
    return it != demand.end() ? it->second : RegSet{};
}

ProgramLiveness
solveProgramLiveness(const Program &prog)
{
    ProgramLiveness pl;
    const auto &code = prog.code();
    if (code.empty())
        return pl;

    // Discovery: every bl target is an outlined function under the
    // bl/ret convention. The program entry participates as a caller
    // (its liveness after each bl is what a region's results must
    // satisfy).
    for (const Inst &inst : code) {
        if (inst.op != Opcode::Bl || inst.target < 0 ||
            inst.target >= static_cast<int>(code.size()))
            continue;
        ProgramLiveness::FnFacts &fi = pl.fns[inst.target];
        ++fi.callSites;
        if (inst.hinted) {
            fi.hinted = true;
            fi.widthHint = std::max(fi.widthHint,
                                    unsigned{inst.blWidthHint});
        }
    }

    const int mainEntry =
        prog.hasLabel("main") ? prog.labelIndex("main") : 0;
    pl.entries.insert(mainEntry);
    for (const auto &[entry, fi] : pl.fns)
        pl.entries.insert(entry);

    for (const int e : pl.entries)
        pl.cfgs.emplace(e, RegionCfg::build(prog, e));

    // Joint fixpoint: alternate per-function solves with call-site
    // demand propagation until summaries and demands stabilize. The
    // call graph is acyclic in practice (outlined leaf regions), so
    // entries+3 rounds bound the chain depth comfortably.
    const std::size_t maxIters = pl.entries.size() + 3;
    for (std::size_t iter = 0; iter < maxIters; ++iter) {
        bool changed = false;
        for (const int e : pl.entries) {
            Liveness lv = Liveness::run(prog, pl.cfgs.at(e),
                                        pl.summaries, pl.demand[e]);
            if (pl.fns.count(e)) {
                const FnSummary next = lv.summary();
                auto it = pl.summaries.find(e);
                if (it == pl.summaries.end() ||
                    !(it->second.liveIn == next.liveIn) ||
                    !(it->second.mayDef == next.mayDef)) {
                    pl.summaries[e] = next;
                    changed = true;
                }
            }
            pl.live.insert_or_assign(e, std::move(lv));
        }

        std::map<int, RegSet> nextDemand;
        for (const int e : pl.entries) {
            const RegionCfg &cfg = pl.cfgs.at(e);
            const Liveness &lv = pl.live.at(e);
            for (const int c : cfg.calls()) {
                const int target =
                    code[static_cast<std::size_t>(c)].target;
                auto it = pl.summaries.find(target);
                if (it == pl.summaries.end())
                    continue;
                RegSet d = lv.liveAfter(c);
                d &= it->second.mayDef;
                nextDemand[target] |= d;
            }
        }
        for (const auto &[e, d] : nextDemand) {
            if (!(pl.demand[e] == d)) {
                pl.demand[e] = d;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return pl;
}

} // namespace liquid
