/**
 * @file
 * Symbolic bitvector interpreter over the scalar ISA and Liquid
 * microcode — the term domain underneath the translation-validation
 * prover (proof.hh).
 *
 * Terms are hash-consed in a TermPool and normalized at construction:
 * constant folding reuses the simulator's own evalScalarOp/evalCompare
 * so the symbolic semantics can never drift from the executable
 * semantics; integer add/sub/rsb/mul terms are kept in a canonical
 * multilinear (polynomial) form over Z/2^32 so algebraically equal
 * affine addresses and values intern to the *same* term pointer;
 * commutative bitwise/min/max operators sort their operands; select
 * chains (the scalarizer's conditional-mov idioms) and sign/zero
 * extensions fold when their inputs are concrete. Float operators are
 * deliberately NOT reassociated or commuted: scalar region and
 * translated microcode evaluate float lanes in the identical order, so
 * structural equality is exactly bit-exact equality, and any algebraic
 * float rewrite would be unsound.
 *
 * Equality of two terms is therefore pointer equality after
 * normalization; residual obligations the rewriter cannot close are
 * discharged by the prover via small-domain enumeration using eval().
 *
 * SymMachine executes a scalar region or a committed UcodeEntry over
 * this domain in one of two address modes:
 *  - Concrete: every effective address must normalize to a constant
 *    (regions emitted by the scalarizer have constant bases and
 *    constant-stepped induction variables); data stays symbolic.
 *  - Lane: the width-polymorphic mode. The induction variable and the
 *    lane index are opaque parameters, memory reads become lane-indexed
 *    Load atoms over normalized symbolic addresses, and the store set
 *    is keyed by address *term*.
 */

#ifndef LIQUID_VERIFIER_SYMEXEC_HH
#define LIQUID_VERIFIER_SYMEXEC_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "asm/program.hh"
#include "isa/instruction.hh"
#include "memory/ucode_cache.hh"

namespace liquid::sym
{

struct Term;
/** Interned term handle: pointer equality == semantic-normal equality. */
using TermRef = const Term *;

/** What a free symbol stands for. */
struct SymDecl
{
    enum class Kind : std::uint8_t
    {
        Mem,     ///< initial-memory element read at a concrete address
        Reg,     ///< a register's value at region entry
        CmpInit, ///< the flags (compare sign) at region entry
        Param,   ///< an opaque parameter (IV value, lane index, width)
        Poison,  ///< a value the proof must not depend on
    };

    Kind kind = Kind::Param;
    Addr addr = 0;         ///< Mem: element address
    unsigned size = 4;     ///< Mem: element size in bytes (1/2/4)
    bool isSigned = false; ///< Mem: sign-extending read
    RegId reg;             ///< Reg
    std::string name;      ///< printable name
};

/** Term node kinds. */
enum class TermKind : std::uint8_t
{
    Const, ///< 32-bit constant
    Sym,   ///< free symbol (see SymDecl)
    Bin,   ///< scalar data-processing op over two terms
    Cmp,   ///< compare sign (-1/0/1) of two terms
    Sel,   ///< conditional select on a compare-sign term
    Ext,   ///< keep low `bits`, sign- or zero-extend to 32
    Load,  ///< initial-memory read at a *symbolic* address (Lane mode)
};

/** One interned term. Immutable once created; owned by the pool. */
struct Term
{
    TermKind kind = TermKind::Const;
    unsigned id = 0;           ///< creation index; canonical sort key
    Opcode op = Opcode::Nop;   ///< Bin
    bool isFloat = false;      ///< Bin/Cmp: float semantics
    Cond cond = Cond::AL;      ///< Sel
    unsigned bits = 32;        ///< Ext
    bool isSigned = false;     ///< Ext/Load
    Word konst = 0;            ///< Const
    unsigned sym = 0;          ///< Sym: SymDecl index
    unsigned size = 4;         ///< Load: element size
    bool poisoned = false;     ///< transitively contains a Poison symbol
    std::array<TermRef, 3> args{{nullptr, nullptr, nullptr}};
    unsigned nargs = 0;

    bool isConst() const { return kind == TermKind::Const; }
    bool isLeaf() const
    {
        return kind == TermKind::Sym || kind == TermKind::Load;
    }
};

/** Does condition @p cond hold for compare sign @p sign (-1/0/1)? */
bool condHoldsSign(Cond cond, int sign);

/**
 * The term pool: hash-consing, normalization, concrete evaluation and
 * substitution. One pool per proof attempt; terms live as long as the
 * pool.
 */
class TermPool
{
  public:
    TermPool();
    ~TermPool();
    TermPool(const TermPool &) = delete;
    TermPool &operator=(const TermPool &) = delete;

    // ---- constructors (normalizing) -----------------------------------
    TermRef konst(Word value);
    TermRef memSym(Addr addr, unsigned size, bool is_signed);
    TermRef regSym(RegId reg);
    TermRef cmpInitSym();
    TermRef param(const std::string &name);
    TermRef poison(const std::string &name);
    TermRef bin(Opcode op, TermRef a, TermRef b, bool is_float);
    TermRef cmp(TermRef a, TermRef b, bool is_float);
    TermRef sel(Cond cond, TermRef sign, TermRef then_t, TermRef else_t);
    TermRef ext(unsigned bits, bool is_signed, TermRef value);
    TermRef load(TermRef addr, unsigned size, bool is_signed);

    const SymDecl &decl(unsigned sym_id) const { return decls_[sym_id]; }
    std::size_t termCount() const { return terms_.size(); }

    /**
     * If a - b normalizes to a compile-time constant (both interpreted
     * as integer polynomials), return it — the Lane-mode alias test.
     */
    std::optional<SWord> affineDiff(TermRef a, TermRef b);

    /**
     * Concrete evaluation under @p env, which must assign every leaf
     * (Sym and Load node) reachable from @p t. Leaf values are the
     * post-extension element values (what readElem would return).
     */
    Word eval(TermRef t, const std::unordered_map<TermRef, Word> &env);

    /** All distinct leaves under @p t, sorted by term id. */
    std::vector<TermRef> leaves(TermRef t);

    /**
     * Rebuild @p t with every leaf found in @p map replaced — the
     * result re-normalizes, so substituted terms re-canonicalize.
     */
    TermRef substitute(TermRef t,
                       const std::unordered_map<TermRef, TermRef> &map);

    /** Compact s-expression rendering for diagnostics. */
    std::string str(TermRef t) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    std::vector<SymDecl> decls_;
    std::vector<std::unique_ptr<Term>> terms_;

    TermRef intern(Term t);
    TermRef symTerm(SymDecl decl);
    TermRef rawBin(Opcode op, TermRef a, TermRef b);
    friend struct TermPoolTestPeer;
};

/** Address handling mode for symbolic execution. */
enum class AddrMode
{
    Concrete, ///< every effective address must fold to a constant
    Lane,     ///< width-polymorphic: addresses stay symbolic terms
};

/** Why a symbolic run could not complete. */
struct MachineResult
{
    bool ok = true;
    std::string why;    ///< set when !ok
    int instIndex = -1; ///< scalar inst index or microcode slot
    std::uint64_t steps = 0;
};

/** A store-set cell: the bytes a region run leaves in one element. */
struct StoreCell
{
    unsigned size = 4;
    TermRef value = nullptr; ///< full-width term; low size*8 bits stored
};

/**
 * Symbolic machine state + interpreter for one run (scalar region or
 * microcode). Mirrors Core::execute()/executeVector() over terms.
 */
class SymMachine
{
  public:
    SymMachine(TermPool &pool, const Program &prog, AddrMode mode);

    /** Initialize all registers/flags to shared region-entry symbols. */
    void initSharedEntry();
    /** Initialize all registers/flags to poison (Lane-mode bodies). */
    void initPoisoned(const std::string &tag);

    TermRef reg(RegId r) const;
    void setReg(RegId r, TermRef t);
    TermRef cmpState() const { return cmp_; }
    void setCmpState(TermRef t) { cmp_ = t; }

    /** Lane-mode: the lane-index parameter vector loads are built on. */
    void setLaneParam(TermRef lane) { lane_ = lane; }

    /** Execute the region entered at @p entry_index until its ret. */
    MachineResult runScalarRegion(int entry_index, std::uint64_t max_steps);

    /**
     * Execute instruction indices [first, last] once, straight-line:
     * branches are ignored (the caller has proven the range is one loop
     * body whose only branch is the trailing backedge). Lane mode.
     */
    MachineResult runScalarBody(int first, int last,
                                std::uint64_t max_steps);

    /** Execute a committed microcode entry to completion. */
    MachineResult runUcode(const UcodeEntry &entry,
                           std::uint64_t max_steps);

    /** Execute microcode slots [first, last] once, straight-line. */
    MachineResult runUcodeBody(const UcodeEntry &entry, unsigned first,
                               unsigned last, std::uint64_t max_steps);

    /** Concrete-mode store set, keyed by element address. */
    const std::map<Addr, StoreCell> &cells() const { return cells_; }

    /** Lane-mode store set, keyed by normalized address term. */
    const std::vector<std::pair<TermRef, StoreCell>> &laneCells() const
    {
        return laneCells_;
    }

  private:
    MachineResult run(const std::vector<Inst> &code, int first, int last,
                      bool follow_branches, bool in_ucode,
                      const UcodeEntry *ucode, std::uint64_t max_steps);
    bool step(const Inst &inst, int index, const UcodeEntry *ucode,
              int &next, MachineResult &res);
    bool execVector(const Inst &inst, int index, const UcodeEntry *ucode,
                    MachineResult &res);
    TermRef memAddrTerm(const Inst &inst);
    bool readMem(Addr addr, unsigned size, bool is_signed, TermRef &out,
                 MachineResult &res, int index);
    bool writeMem(Addr addr, unsigned size, TermRef value,
                  MachineResult &res, int index);
    bool readLane(TermRef addr, unsigned size, bool is_signed,
                  TermRef &out, MachineResult &res, int index);
    bool writeLane(TermRef addr, unsigned size, TermRef value,
                   MachineResult &res, int index);
    bool fail(MachineResult &res, int index, std::string why);

    TermPool &pool_;
    const Program &prog_;
    AddrMode mode_;
    std::array<TermRef, 64> regs_{};   ///< scalar classes, by flat id
    std::map<unsigned, std::array<TermRef, 16>> vregs_; ///< by flat id
    std::map<unsigned, TermRef> laneVregs_; ///< Lane mode: one term/vreg
    TermRef cmp_ = nullptr;
    TermRef lane_ = nullptr;
    std::map<Addr, StoreCell> cells_;
    std::vector<std::pair<TermRef, StoreCell>> laneCells_;
};

} // namespace liquid::sym

#endif // LIQUID_VERIFIER_SYMEXEC_HH
