#include "verifier/proof.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "chaos/oracle.hh"
#include "common/logging.hh"
#include "scalarizer/scalarizer.hh"
#include "translator/abort_reason.hh"
#include "translator/offline.hh"
#include "verifier/cfg.hh"
#include "verifier/poly.hh"
#include "verifier/range.hh"
#include "verifier/symexec.hh"

namespace liquid
{

namespace
{

using sym::AddrMode;
using sym::StoreCell;
using sym::SymDecl;
using sym::SymMachine;
using sym::TermKind;
using sym::TermPool;
using sym::TermRef;

// ---------------------------------------------------------------------------
// Verdict lattice.
// ---------------------------------------------------------------------------

unsigned
verdictRank(ProofVerdict v)
{
    switch (v) {
      case ProofVerdict::Refuted:
        return 3;
      case ProofVerdict::Unknown:
        return 2;
      case ProofVerdict::Proved:
        return 1;
      case ProofVerdict::NoTranslation:
        return 0;
    }
    return 0;
}

// ---------------------------------------------------------------------------
// Obligation discharge: structural equality, then shape-deduplicated
// small-domain enumeration over the residual obligations' leaves.
// ---------------------------------------------------------------------------

/** One proof obligation: lhs and rhs must agree for every environment. */
struct Obligation
{
    TermRef lhs = nullptr;
    TermRef rhs = nullptr;
    std::string what;
};

/** Clip a full-width value to what a size-byte element read yields. */
Word
clipElem(Word v, unsigned size, bool is_signed)
{
    if (size >= 4)
        return v;
    const unsigned bits = size * 8;
    const Word mask = (1u << bits) - 1;
    v &= mask;
    if (is_signed && (v & (1u << (bits - 1))))
        v |= ~mask;
    return v;
}

/**
 * Enumeration tiers: the more distinct leaves an obligation has, the
 * fewer values each leaf sweeps (the cartesian product is the budget).
 * Every tier starts with {0, 1}: for the multilinear fragment the
 * normalizer produces, agreement on the {0,1} corners alone is already
 * a complete equality test; the remaining values target saturation
 * boundaries, shift widths and sign/extension corners.
 */
const std::vector<Word> &
tierFor(std::size_t leaves)
{
    static const std::vector<Word> t2 = {
        0,          1,          2,          3,
        4,          5,          7,          8,
        15,         16,         31,         32,
        100,        Word(-1),   Word(-2),   Word(-3),
        127,        Word(-128), 128,        255,
        65535,      65536,      32767,      Word(-32768),
        0x7fffffffu, 0x80000000u,
    };
    static const std::vector<Word> t4 = {
        0, 1, 2, Word(-1), Word(-2), 7, 127, Word(-128),
        255, 32767, Word(-32768),
    };
    static const std::vector<Word> t6 = {
        0, 1, 2, Word(-1), 127, Word(-32768), 65535,
    };
    static const std::vector<Word> t8 = {0, 1, Word(-1), 2, 32767};
    if (leaves <= 2)
        return t2;
    if (leaves <= 4)
        return t4;
    if (leaves <= 6)
        return t6;
    return t8;
}

/** The values a leaf ranges over, clipped to its element domain. */
std::vector<Word>
domainFor(const TermPool &pool, TermRef leaf, const std::vector<Word> &tier)
{
    unsigned size = 4;
    bool is_signed = false;
    if (leaf->kind == TermKind::Sym) {
        const SymDecl &d = pool.decl(leaf->sym);
        if (d.kind == SymDecl::Kind::CmpInit)
            return {Word(-1), 0, 1};
        if (d.kind != SymDecl::Kind::Mem)
            return tier;
        size = d.size;
        is_signed = d.isSigned;
    } else {
        size = leaf->size;
        is_signed = leaf->isSigned;
    }
    std::vector<Word> out;
    out.reserve(tier.size());
    for (const Word v : tier) {
        const Word c = clipElem(v, size, is_signed);
        if (std::find(out.begin(), out.end(), c) == out.end())
            out.push_back(c);
    }
    return out;
}

/** A leaf's domain class for alpha-renamed shape keys. */
std::string
leafClass(const TermPool &pool, TermRef leaf)
{
    if (leaf->kind == TermKind::Load) {
        return "l" + std::to_string(leaf->size) +
               (leaf->isSigned ? "s" : "u");
    }
    const SymDecl &d = pool.decl(leaf->sym);
    switch (d.kind) {
      case SymDecl::Kind::Mem:
        return "m" + std::to_string(d.size) + (d.isSigned ? "s" : "u");
      case SymDecl::Kind::CmpInit:
        return "c";
      case SymDecl::Kind::Poison:
        return "!";
      default:
        return "p";  // Reg and Param both sweep the full tier
    }
}

/**
 * Alpha-renamed structural key of a term: leaves are replaced by their
 * domain class in first-visit order, so obligations that differ only in
 * *which* memory elements they mention (every loop iteration's copy of
 * the same dataflow) share one key and are enumerated once.
 */
void
shapeKey(const TermPool &pool, TermRef t, std::map<TermRef, int> &seen,
         std::string &out)
{
    auto it = seen.find(t);
    if (it != seen.end()) {
        out += '#';
        out += std::to_string(it->second);
        return;
    }
    seen.emplace(t, static_cast<int>(seen.size()));
    switch (t->kind) {
      case TermKind::Const:
        out += 'k';
        out += std::to_string(t->konst);
        return;
      case TermKind::Sym:
        out += 's';
        out += leafClass(pool, t);
        return;
      case TermKind::Load:
        out += leafClass(pool, t);
        out += '(';
        shapeKey(pool, t->args[0], seen, out);
        out += ')';
        return;
      case TermKind::Bin:
        out += 'b';
        out += std::to_string(static_cast<int>(t->op));
        if (t->isFloat)
            out += 'f';
        break;
      case TermKind::Cmp:
        out += 'c';
        if (t->isFloat)
            out += 'f';
        break;
      case TermKind::Sel:
        out += 'S';
        out += std::to_string(static_cast<int>(t->cond));
        break;
      case TermKind::Ext:
        out += 'e';
        out += std::to_string(t->bits);
        out += t->isSigned ? 's' : 'u';
        break;
    }
    out += '(';
    for (unsigned i = 0; i < t->nargs; ++i) {
        if (i)
            out += ',';
        shapeKey(pool, t->args[i], seen, out);
    }
    out += ')';
}

/** Discharge outcome over a set of obligations. */
struct DischargeOut
{
    ProofVerdict verdict = ProofVerdict::Proved;
    unsigned obligations = 0;
    unsigned closedStructural = 0;
    unsigned closedEnum = 0;
    unsigned unknown = 0;
    std::uint64_t points = 0;
    unsigned pinned = 0;  ///< leaves pinned by region-entry range facts
    std::optional<Counterexample> ce;
    std::string firstUnknown;
};

DischargeOut
dischargeAll(TermPool &pool, const std::vector<Obligation> &obs,
             unsigned max_leaves, const EntryFacts *facts = nullptr)
{
    DischargeOut out;
    out.obligations = static_cast<unsigned>(obs.size());
    std::map<std::string, bool> cache;  // shape key -> enum-closed?

    auto noteUnknown = [&out](const Obligation &ob, const std::string &why) {
        ++out.unknown;
        if (out.firstUnknown.empty())
            out.firstUnknown = ob.what + ": " + why;
    };

    for (const Obligation &ob : obs) {
        if (ob.lhs == ob.rhs) {
            ++out.closedStructural;
            continue;
        }
        if (ob.lhs->poisoned || ob.rhs->poisoned) {
            noteUnknown(ob, "depends on unconstrained (poison) state");
            continue;
        }

        std::vector<TermRef> leaves = pool.leaves(ob.lhs);
        for (TermRef l : pool.leaves(ob.rhs))
            leaves.push_back(l);
        std::sort(leaves.begin(), leaves.end(),
                  [](TermRef a, TermRef b) { return a->id < b->id; });
        leaves.erase(std::unique(leaves.begin(), leaves.end()),
                     leaves.end());

        // Region-entry range facts pin proven-constant memory leaves
        // to singleton domains: they stop counting against the leaf
        // budget and their corner sweep collapses to one point.
        std::vector<std::optional<Word>> pins(leaves.size());
        std::size_t npinned = 0;
        if (facts) {
            for (std::size_t i = 0; i < leaves.size(); ++i) {
                if (leaves[i]->kind != TermKind::Sym)
                    continue;
                const SymDecl &d = pool.decl(leaves[i]->sym);
                if (d.kind != SymDecl::Kind::Mem)
                    continue;
                Word v = 0;
                std::string fact;
                if (facts->readCell(d.addr, d.size, d.isSigned, v,
                                    fact)) {
                    pins[i] = v;
                    ++npinned;
                }
            }
        }
        const std::size_t free_leaves = leaves.size() - npinned;

        if (free_leaves > max_leaves) {
            noteUnknown(ob, "too many distinct leaves (" +
                                std::to_string(leaves.size()) + ")");
            continue;
        }

        // Pinned obligations bypass the shape cache: the alpha-renamed
        // key cannot see which elements are pinned, so sharing results
        // across differently-pinned obligations would be unsound.
        std::string key;
        if (npinned == 0) {
            std::map<TermRef, int> seen;
            shapeKey(pool, ob.lhs, seen, key);
            key += '|';
            shapeKey(pool, ob.rhs, seen, key);
            auto hit = cache.find(key);
            if (hit != cache.end()) {
                if (hit->second)
                    ++out.closedEnum;
                else
                    noteUnknown(ob,
                                "same shape as an unknown obligation");
                continue;
            }
        }
        out.pinned += static_cast<unsigned>(npinned);

        const std::vector<Word> &tier = tierFor(free_leaves);
        std::vector<std::vector<Word>> doms;
        doms.reserve(leaves.size());
        for (std::size_t i = 0; i < leaves.size(); ++i) {
            if (pins[i])
                doms.push_back({*pins[i]});
            else
                doms.push_back(domainFor(pool, leaves[i], tier));
        }

        std::vector<std::size_t> idx(leaves.size(), 0);
        std::unordered_map<TermRef, Word> env;
        bool refuted = false;
        while (true) {
            for (std::size_t i = 0; i < leaves.size(); ++i)
                env[leaves[i]] = doms[i][idx[i]];
            const Word a = pool.eval(ob.lhs, env);
            const Word b = pool.eval(ob.rhs, env);
            ++out.points;
            if (a != b) {
                Counterexample ce;
                ce.obligation = ob.what;
                ce.scalarValue = a;
                ce.simdValue = b;
                ce.memOnly = true;
                for (std::size_t i = 0; i < leaves.size(); ++i) {
                    CeAssignment as;
                    as.value = doms[i][idx[i]];
                    if (leaves[i]->kind == TermKind::Sym) {
                        const SymDecl &d = pool.decl(leaves[i]->sym);
                        as.sym = d.name;
                        if (d.kind == SymDecl::Kind::Mem) {
                            as.isMem = true;
                            as.addr = d.addr;
                            as.size = d.size;
                        } else {
                            ce.memOnly = false;
                        }
                    } else {
                        as.sym = pool.str(leaves[i]);
                        ce.memOnly = false;
                    }
                    ce.assigns.push_back(std::move(as));
                }
                out.ce = std::move(ce);
                refuted = true;
                break;
            }
            std::size_t i = 0;
            for (; i < idx.size(); ++i) {
                if (++idx[i] < doms[i].size())
                    break;
                idx[i] = 0;
            }
            if (i == idx.size())
                break;
        }
        if (refuted) {
            out.verdict = ProofVerdict::Refuted;
            return out;
        }
        if (npinned == 0)
            cache.emplace(std::move(key), true);
        ++out.closedEnum;
    }
    if (out.unknown > 0)
        out.verdict = ProofVerdict::Unknown;
    return out;
}

// ---------------------------------------------------------------------------
// Store-set obligations (Concrete mode).
// ---------------------------------------------------------------------------

/** Any cell overlapping [addr, addr+size) other than one at addr? */
bool
overlapsOther(const std::map<Addr, StoreCell> &cells, Addr addr,
              unsigned size)
{
    auto it = cells.lower_bound(addr >= 3 ? addr - 3 : 0);
    for (; it != cells.end() && it->first < addr + size; ++it) {
        if (it->first == addr)
            continue;
        if (it->first + it->second.size > addr)
            return true;
    }
    return false;
}

std::string
describeStore(const Program &prog, Addr addr)
{
    std::ostringstream os;
    os << "store @0x" << std::hex << addr;
    const std::string sym = prog.symbolAt(addr);
    if (!sym.empty())
        os << std::dec << " (" << sym << "+"
           << (addr - prog.symbol(sym)) << ")";
    return os.str();
}

void
collectStoreObligations(TermPool &pool, const Program &prog,
                        const std::map<Addr, StoreCell> &scalar_cells,
                        const std::map<Addr, StoreCell> &simd_cells,
                        std::vector<Obligation> &obs)
{
    std::set<Addr> addrs;
    for (const auto &[a, c] : scalar_cells)
        addrs.insert(a);
    for (const auto &[a, c] : simd_cells)
        addrs.insert(a);

    for (const Addr a : addrs) {
        const auto si = scalar_cells.find(a);
        const auto ui = simd_cells.find(a);
        const std::string what = describeStore(prog, a);

        if (si != scalar_cells.end() && ui != simd_cells.end()) {
            if (si->second.size != ui->second.size) {
                obs.push_back({pool.poison("storeGranularity"),
                               pool.konst(0),
                               what + ": store size mismatch"});
                continue;
            }
            const unsigned bits = si->second.size * 8;
            obs.push_back({pool.ext(bits, false, si->second.value),
                           pool.ext(bits, false, ui->second.value),
                           what});
            continue;
        }

        // One-sided store: the missing side leaves the element holding
        // its region-entry value (an arbitrary memory symbol, or the
        // pinned constant for read-only data).
        const StoreCell &have =
            si != scalar_cells.end() ? si->second : ui->second;
        const auto &other =
            si != scalar_cells.end() ? simd_cells : scalar_cells;
        if (overlapsOther(other, a, have.size)) {
            obs.push_back({pool.poison("storeGranularity"), pool.konst(0),
                           what + ": overlapping store granularity "
                                  "mismatch"});
            continue;
        }
        TermRef entry_val = nullptr;
        Word w0 = 0;
        if (prog.isReadOnly(a) &&
            prog.readInitialElem(a, have.size, false, w0))
            entry_val = pool.konst(w0);
        else
            entry_val = pool.memSym(a, have.size, false);
        const unsigned bits = have.size * 8;
        const bool scalar_has = si != scalar_cells.end();
        obs.push_back(
            {pool.ext(bits, false,
                      scalar_has ? si->second.value : entry_val),
             pool.ext(bits, false,
                      scalar_has ? entry_val : ui->second.value),
             what + (scalar_has ? " (missing in microcode)"
                                : " (missing in scalar)")});
    }
}

void
fillFromDischarge(WidthProof &wp, const DischargeOut &d)
{
    wp.verdict = d.verdict;
    wp.obligations = d.obligations;
    wp.closedStructural = d.closedStructural;
    wp.closedEnum = d.closedEnum;
    wp.unknownObligations = d.unknown;
    wp.enumPoints = d.points;
    wp.rangePinned = d.pinned;
    wp.ce = d.ce;
    std::ostringstream os;
    switch (d.verdict) {
      case ProofVerdict::Proved:
        os << "proved: " << d.obligations << " obligations ("
           << d.closedStructural << " structural, " << d.closedEnum
           << " enumerated over " << d.points << " points";
        if (d.pinned > 0)
            os << ", " << d.pinned << " leaves range-pinned";
        os << ")";
        break;
      case ProofVerdict::Refuted:
        os << "refuted: " << (d.ce ? d.ce->obligation : "obligation");
        break;
      case ProofVerdict::Unknown:
        os << "unknown: " << d.firstUnknown;
        break;
      case ProofVerdict::NoTranslation:
        os << "no translation";
        break;
    }
    wp.summary = os.str();
}

// ---------------------------------------------------------------------------
// Per-width driver.
// ---------------------------------------------------------------------------

WidthProof
proveAtWidth(const Program &prog, int entry_index, unsigned width_hint,
             const RegSet &demand, unsigned width,
             const ProofOptions &opts)
{
    WidthProof wp;
    wp.width = width;

    // The dynamic translator's binding cascade: start at
    // min(width, hint) and halve while the abort is width-dependent.
    unsigned start = width;
    if (width_hint != 0)
        start = std::min(start, width_hint);
    AbortReason last = AbortReason::None;
    for (unsigned bind = start; bind >= 2; bind /= 2) {
        OfflineResult off =
            translateOffline(prog, entry_index, bind, width_hint);
        if (off.ok) {
            wp = proveTranslation(prog, entry_index, off.entry, demand,
                                  opts);
            wp.width = width;
            return wp;
        }
        last = off.reason;
        if (!abortIsWidthDependent(off.reason))
            break;
    }
    wp.verdict = ProofVerdict::NoTranslation;
    wp.summary = std::string("no translation commits (") +
                 (last == AbortReason::None ? "unknown"
                                            : abortReasonName(last)) +
                 ")";
    return wp;
}

// ---------------------------------------------------------------------------
// Width-polymorphic (symbolic-N) proof.
// ---------------------------------------------------------------------------

/** Scalar region split: straight preamble + single straight-line loop. */
struct ScalarShape
{
    bool ok = false;
    std::string why;
    int bodyFirst = -1;
    int bodyLast = -1;  ///< the conditional backedge instruction
    RegId iv;
};

ScalarShape
scalarShapeOf(const Program &prog, int entry_index)
{
    ScalarShape s;
    const auto &code = prog.code();
    const RegionCfg cfg = RegionCfg::build(prog, entry_index);
    if (cfg.loops().size() != 1) {
        s.why = "region has " + std::to_string(cfg.loops().size()) +
                " loops (need exactly 1)";
        return s;
    }
    const CfgLoop &loop = cfg.loops()[0];
    const auto &blocks = cfg.blocks();
    if (loop.headBlock < 0 || loop.latchBlock < 0) {
        s.why = "degenerate loop";
        return s;
    }
    const int first =
        blocks[static_cast<std::size_t>(loop.headBlock)].first;
    const int last =
        blocks[static_cast<std::size_t>(loop.latchBlock)].last;

    // Preamble: straight-line register setup only.
    for (int i = entry_index; i < first; ++i) {
        const Inst &in = code[static_cast<std::size_t>(i)];
        if (in.isBranch() || in.op == Opcode::Ret ||
            in.op == Opcode::Bl || in.isMem()) {
            s.why = "preamble is not straight-line register setup";
            return s;
        }
    }
    // Body: straight-line except the trailing conditional backedge.
    for (int i = first; i < last; ++i) {
        if (code[static_cast<std::size_t>(i)].isBranch()) {
            s.why = "loop body has inner control flow";
            return s;
        }
    }
    const Inst &back = code[static_cast<std::size_t>(last)];
    if (back.op != Opcode::B || back.cond == Cond::AL ||
        back.target != first) {
        s.why = "loop is not closed by a conditional backedge";
        return s;
    }
    // Epilogue: nothing but the ret.
    if (last + 1 >= static_cast<int>(code.size()) ||
        code[static_cast<std::size_t>(last + 1)].op != Opcode::Ret) {
        s.why = "region has a non-trivial epilogue";
        return s;
    }

    // The induction variable: unique register stepped `add r, r, #1`
    // with a single body definition, feeding the exit compare.
    std::map<unsigned, unsigned> defCount;
    std::set<unsigned> compared;
    std::vector<RegId> stepped;
    for (int i = first; i <= last; ++i) {
        const Inst &in = code[static_cast<std::size_t>(i)];
        const InstEffects fx = instEffects(in);
        for (const RegId d : fx.defs.regs())
            ++defCount[d.flat()];
        if (in.op == Opcode::Add && in.hasImm && in.imm == 1 &&
            in.dst.isValid() && in.dst == in.src1 && in.dst.isScalar())
            stepped.push_back(in.dst);
        if (in.op == Opcode::Cmp) {
            if (in.src1.isValid())
                compared.insert(in.src1.flat());
            if (!in.hasImm && in.src2.isValid())
                compared.insert(in.src2.flat());
        }
    }
    for (const RegId r : stepped) {
        if (defCount[r.flat()] == 1 && compared.count(r.flat())) {
            if (s.iv.isValid()) {
                s.why = "multiple induction-variable candidates";
                return s;
            }
            s.iv = r;
        }
    }
    if (!s.iv.isValid()) {
        s.why = "no unit-stepped induction variable";
        return s;
    }
    s.bodyFirst = first;
    s.bodyLast = last;
    s.ok = true;
    return s;
}

/** Microcode split: preamble + single backward-branch loop, no tail. */
struct UcodeShape
{
    bool ok = false;
    std::string why;
    unsigned bodyFirst = 0;
    unsigned bodyLast = 0;  ///< the backedge slot
};

UcodeShape
ucodeShapeOf(const UcodeEntry &e)
{
    UcodeShape s;
    int branch = -1;
    for (std::size_t j = 0; j < e.insts.size(); ++j) {
        const Inst &in = e.insts[j];
        if (!in.isBranch())
            continue;
        if (in.op != Opcode::B || branch >= 0) {
            s.why = "microcode has more than one branch";
            return s;
        }
        branch = static_cast<int>(j);
    }
    if (branch < 0) {
        s.why = "microcode has no backedge";
        return s;
    }
    const Inst &b = e.insts[static_cast<std::size_t>(branch)];
    if (b.cond == Cond::AL || b.target < 0 || b.target > branch) {
        s.why = "microcode backedge is not a conditional backward "
                "branch";
        return s;
    }
    if (branch + 1 != static_cast<int>(e.insts.size())) {
        s.why = "microcode has an epilogue after the backedge";
        return s;
    }
    for (int j = 0; j < b.target; ++j) {
        if (e.insts[static_cast<std::size_t>(j)].isMem()) {
            s.why = "microcode preamble touches memory";
            return s;
        }
    }
    s.bodyFirst = static_cast<unsigned>(b.target);
    s.bodyLast = static_cast<unsigned>(branch);
    s.ok = true;
    return s;
}

/**
 * If every initialized word of the read-only symbol containing @p addr
 * holds one value, return it — the scalar lowering of a splat constant
 * vector is an IV-indexed load from such a table, which the
 * width-polymorphic proof folds to the constant (every in-bounds read
 * yields it; region executions only read in bounds).
 */
std::optional<Word>
roSplatValue(const Program &prog, Addr addr)
{
    if (!prog.isReadOnly(addr))
        return std::nullopt;
    const std::string name = prog.symbolAt(addr);
    if (name.empty())
        return std::nullopt;
    const Addr base = prog.symbol(name);
    Addr end =
        Program::dataBase + static_cast<Addr>(prog.dataImage().size());
    for (const auto &[n, a] : prog.symbols()) {
        if (a > base && a < end)
            end = a;
    }
    Word v0 = 0;
    if (!prog.readInitialElem(base, 4, false, v0))
        return std::nullopt;
    for (Addr a = base; a + 4 <= end; a += 4) {
        Word v = 0;
        if (!prog.isReadOnly(a) ||
            !prog.readInitialElem(a, 4, false, v) || v != v0)
            return std::nullopt;
    }
    return v0;
}

/** Fold Load atoms over read-only splat tables to their constant. */
TermRef
foldRoLoads(TermPool &pool, const Program &prog, TermRef t)
{
    std::unordered_map<TermRef, TermRef> map;
    for (TermRef leaf : pool.leaves(t)) {
        if (leaf->kind != TermKind::Load || leaf->size != 4)
            continue;
        TermRef addr = leaf->args[0];
        std::unordered_map<TermRef, Word> env;
        for (TermRef al : pool.leaves(addr))
            env[al] = 0;
        const Word c0 = pool.eval(addr, env);
        if (const auto v = roSplatValue(prog, c0))
            map[leaf] = pool.konst(*v);
    }
    return map.empty() ? t : pool.substitute(t, map);
}

/**
 * The width-polymorphic proof. Fills rp.symbolicN, and on success the
 * per-width entries of rp.widths (all Proved, widthGeneric).
 */
void
trySymbolicN(const Program &prog, int entry_index, unsigned width_hint,
             const RegSet &demand, const ProofOptions &opts,
             RegionProof &rp)
{
    SymbolicNProof &sn = rp.symbolicN;
    sn.attempted = true;

    if (!demand.empty()) {
        sn.summary = "region has demanded live-outs (reductions are "
                     "not lane-generic)";
        return;
    }
    const ScalarShape ss = scalarShapeOf(prog, entry_index);
    if (!ss.ok) {
        sn.summary = ss.why;
        return;
    }

    // Per-width offline translations at the widths the hardware would
    // bind; all must commit, and all must be the same microcode modulo
    // the induction-variable step immediate.
    std::map<unsigned, UcodeEntry> entries;  // bind width -> entry
    for (const unsigned w : opts.widths) {
        const unsigned bind =
            width_hint ? std::min(w, width_hint) : w;
        if (entries.count(bind))
            continue;
        OfflineResult off =
            translateOffline(prog, entry_index, bind, width_hint);
        if (!off.ok || off.entry.simdWidth != bind) {
            sn.summary = "width " + std::to_string(bind) +
                         " does not bind directly (" +
                         (off.ok ? "fallback" : off.abortReason) + ")";
            return;
        }
        entries.emplace(bind, std::move(off.entry));
    }
    if (entries.empty()) {
        sn.summary = "no widths requested";
        return;
    }

    const UcodeEntry &base = entries.begin()->second;
    const unsigned baseBind = entries.begin()->first;
    const UcodeShape us = ucodeShapeOf(base);
    if (!us.ok) {
        sn.summary = us.why;
        return;
    }
    int lastStore = -1;
    for (unsigned j = us.bodyFirst; j <= us.bodyLast; ++j) {
        if (base.insts[j].isStore())
            lastStore = static_cast<int>(j);
    }

    // Width-generic structural check: across binds, the microcode may
    // differ ONLY in the IV-step immediate (`add iv, iv, #width`), and
    // that step must come after every store so per-iteration stores are
    // width-independent.
    int stepSlot = -1;
    for (const auto &[bind, e] : entries) {
        if (e.insts.size() != base.insts.size() ||
            !(e.cvecs == base.cvecs)) {
            sn.summary = "microcode is not width-generic (structure "
                         "differs between widths)";
            return;
        }
        for (std::size_t j = 0; j < e.insts.size(); ++j) {
            if (e.insts[j] == base.insts[j])
                continue;
            const Inst &a = base.insts[j];
            const Inst &b = e.insts[j];
            const bool ivStep =
                a.op == Opcode::Add && b.op == Opcode::Add &&
                a.hasImm && b.hasImm && a.dst == b.dst &&
                a.dst == a.src1 && b.dst == b.src1 &&
                a.imm == static_cast<std::int32_t>(baseBind) &&
                b.imm == static_cast<std::int32_t>(bind);
            if (!ivStep || (stepSlot >= 0 &&
                            stepSlot != static_cast<int>(j))) {
                sn.summary = "microcode is not width-generic (differs "
                             "beyond the IV step)";
                return;
            }
            stepSlot = static_cast<int>(j);
        }
    }
    if (stepSlot < 0) {
        // Single bind: locate the step directly.
        for (unsigned j = us.bodyFirst; j <= us.bodyLast; ++j) {
            const Inst &in = base.insts[j];
            if (in.op == Opcode::Add && in.hasImm && in.dst == in.src1 &&
                in.imm == static_cast<std::int32_t>(baseBind)) {
                if (stepSlot >= 0) {
                    sn.summary = "ambiguous microcode IV step";
                    return;
                }
                stepSlot = static_cast<int>(j);
            }
        }
        if (stepSlot < 0) {
            sn.summary = "no microcode IV step found";
            return;
        }
    }
    if (stepSlot <= lastStore || stepSlot < static_cast<int>(us.bodyFirst)) {
        sn.summary = "microcode IV step precedes a store (stores are "
                     "width-dependent)";
        return;
    }
    const RegId ivU = base.insts[static_cast<std::size_t>(stepSlot)].dst;

    // ---- symbolic runs ------------------------------------------------
    TermPool pool;

    // Scalar: preamble, then one body iteration at an arbitrary
    // element index nu.
    SymMachine scalar(pool, prog, AddrMode::Lane);
    scalar.initPoisoned("sentry");
    if (ss.bodyFirst > entry_index) {
        const auto r = scalar.runScalarBody(entry_index, ss.bodyFirst - 1,
                                            opts.maxSteps);
        if (!r.ok) {
            sn.summary = "scalar preamble: " + r.why;
            return;
        }
    }
    TermRef nu = pool.param("nu");
    scalar.setReg(ss.iv, nu);
    {
        const auto r = scalar.runScalarBody(ss.bodyFirst, ss.bodyLast,
                                            opts.maxSteps);
        if (!r.ok) {
            sn.summary = "scalar body: " + r.why;
            return;
        }
    }

    // Microcode: preamble, then one body iteration at an arbitrary
    // vector base mu, observed at an arbitrary lane l.
    SymMachine simd(pool, prog, AddrMode::Lane);
    simd.initPoisoned("uentry");
    if (us.bodyFirst > 0) {
        const auto r =
            simd.runUcodeBody(base, 0, us.bodyFirst - 1, opts.maxSteps);
        if (!r.ok) {
            sn.summary = "microcode preamble: " + r.why;
            return;
        }
    }
    TermRef mu = pool.param("mu");
    TermRef lane = pool.param("lane");
    simd.setReg(ivU, mu);
    simd.setLaneParam(lane);
    {
        const auto r = simd.runUcodeBody(base, us.bodyFirst, us.bodyLast,
                                         opts.maxSteps);
        if (!r.ok) {
            sn.summary = "microcode body: " + r.why;
            return;
        }
    }

    // ---- match store sets under nu := mu + lane -----------------------
    std::unordered_map<TermRef, TermRef> sigma;
    sigma[nu] = pool.bin(Opcode::Add, mu, lane, false);

    const auto &sc = scalar.laneCells();
    const auto &uc = simd.laneCells();
    if (sc.size() != uc.size()) {
        sn.summary = "per-iteration store counts differ (" +
                     std::to_string(sc.size()) + " scalar vs " +
                     std::to_string(uc.size()) + " microcode)";
        return;
    }

    std::vector<Obligation> obs;
    std::vector<bool> used(sc.size(), false);
    for (const auto &[ua, ucell] : uc) {
        int match = -1;
        for (std::size_t i = 0; i < sc.size(); ++i) {
            if (used[i])
                continue;
            TermRef sa = pool.substitute(sc[i].first, sigma);
            const auto d = pool.affineDiff(sa, ua);
            if (d && *d == 0) {
                match = static_cast<int>(i);
                break;
            }
        }
        if (match < 0) {
            sn.summary = "a microcode store has no scalar counterpart "
                         "at the corresponding element";
            return;
        }
        used[static_cast<std::size_t>(match)] = true;
        const StoreCell &scell = sc[static_cast<std::size_t>(match)].second;
        if (scell.size != ucell.size) {
            sn.summary = "store sizes differ between scalar and "
                         "microcode";
            return;
        }
        const unsigned bits = scell.size * 8;
        TermRef lhs = foldRoLoads(
            pool, prog,
            pool.ext(bits, false, pool.substitute(scell.value, sigma)));
        TermRef rhs =
            foldRoLoads(pool, prog, pool.ext(bits, false, ucell.value));
        obs.push_back({lhs, rhs, "lane-generic store"});
    }

    std::optional<RangeFacts> rangeFacts;
    if (opts.ranges && opts.ranges->sound)
        rangeFacts.emplace(prog, *opts.ranges, entry_index);
    const DischargeOut d =
        dischargeAll(pool, obs, opts.maxEnumLeaves,
                     rangeFacts ? &*rangeFacts : nullptr);
    sn.obligations = d.obligations;
    sn.enumPoints = d.points;
    if (d.verdict != ProofVerdict::Proved) {
        // Never refute here: the parameters range over a superset of
        // reachable environments, so a mismatch is only a failure to
        // prove. Fall back to the per-width proofs.
        sn.summary = d.verdict == ProofVerdict::Refuted
                         ? "lane-generic obligation not provable "
                           "symbolically (falling back to per-width)"
                         : "unknown: " + d.firstUnknown;
        return;
    }
    sn.proved = true;
    {
        std::ostringstream os;
        os << "width-generic: " << d.obligations
           << " lane obligations proved once for widths";
        for (const unsigned w : opts.widths)
            os << ' ' << w;
        sn.summary = os.str();
    }
    for (const unsigned w : opts.widths) {
        WidthProof wp;
        wp.width = w;
        wp.boundWidth = width_hint ? std::min(w, width_hint) : w;
        wp.verdict = ProofVerdict::Proved;
        wp.widthGeneric = true;
        wp.obligations = d.obligations;
        wp.closedStructural = d.closedStructural;
        wp.closedEnum = d.closedEnum;
        wp.enumPoints = d.points;
        wp.summary = "proved by the width-generic (symbolic-N) proof";
        rp.widths.push_back(std::move(wp));
    }
}

Program
withCeImage(const Program &prog, const Counterexample &ce)
{
    Program mod = prog;
    for (const CeAssignment &a : ce.assigns) {
        if (!a.isMem)
            continue;
        switch (a.size) {
          case 1:
            mod.initByte(a.addr, static_cast<std::uint8_t>(a.value));
            break;
          case 2:
            mod.initHalf(a.addr, static_cast<std::uint16_t>(a.value));
            break;
          default:
            mod.initWord(a.addr, a.value);
            break;
        }
    }
    return mod;
}

} // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

const char *
proofVerdictName(ProofVerdict verdict)
{
    switch (verdict) {
      case ProofVerdict::Proved:
        return "proved";
      case ProofVerdict::Refuted:
        return "refuted";
      case ProofVerdict::Unknown:
        return "unknown";
      case ProofVerdict::NoTranslation:
        return "noTranslation";
    }
    return "?";
}

ProofVerdict
worseProofVerdict(ProofVerdict a, ProofVerdict b)
{
    return verdictRank(a) >= verdictRank(b) ? a : b;
}

ProofVerdict
RegionProof::overall() const
{
    ProofVerdict v = ProofVerdict::NoTranslation;
    for (const WidthProof &wp : widths)
        v = worseProofVerdict(v, wp.verdict);
    return v;
}

ProofVerdict
ProgramProof::overall() const
{
    ProofVerdict v = ProofVerdict::NoTranslation;
    for (const RegionProof &rp : regions)
        v = worseProofVerdict(v, rp.overall());
    return v;
}

unsigned
ProgramProof::count(ProofVerdict verdict) const
{
    unsigned n = 0;
    for (const RegionProof &rp : regions)
        n += rp.overall() == verdict ? 1 : 0;
    return n;
}

WidthProof
proveTranslation(const Program &prog, int entry_index,
                 const UcodeEntry &ucode, const RegSet &demand,
                 const ProofOptions &opts)
{
    WidthProof wp;
    wp.width = ucode.simdWidth;
    wp.boundWidth = ucode.simdWidth;

    TermPool pool;

    SymMachine scalar(pool, prog, AddrMode::Concrete);
    scalar.initSharedEntry();
    const auto sres = scalar.runScalarRegion(entry_index, opts.maxSteps);
    if (!sres.ok) {
        wp.verdict = ProofVerdict::Unknown;
        wp.summary = "scalar symbolic execution failed: " + sres.why;
        return wp;
    }

    SymMachine simd(pool, prog, AddrMode::Concrete);
    simd.initSharedEntry();
    const auto ures = simd.runUcode(ucode, opts.maxSteps);
    if (!ures.ok) {
        wp.verdict = ProofVerdict::Unknown;
        wp.summary = "microcode symbolic execution failed: " + ures.why;
        return wp;
    }

    std::vector<Obligation> obs;
    collectStoreObligations(pool, prog, scalar.cells(), simd.cells(),
                            obs);
    for (const RegId r : demand.regs()) {
        obs.push_back({scalar.reg(r), simd.reg(r),
                       "live-out " + regName(r)});
    }

    std::optional<RangeFacts> rangeFacts;
    if (opts.ranges && opts.ranges->sound)
        rangeFacts.emplace(prog, *opts.ranges, entry_index);
    fillFromDischarge(wp,
                      dischargeAll(pool, obs, opts.maxEnumLeaves,
                                   rangeFacts ? &*rangeFacts : nullptr));
    return wp;
}

RegionProof
proveRegion(const Program &prog, int entry_index, unsigned width_hint,
            const RegSet &demand, const ProofOptions &opts)
{
    RegionProof rp;
    rp.entryIndex = entry_index;
    rp.entryLabel = prog.labelAt(entry_index);
    rp.widthHint = width_hint;
    rp.demand = demand;

    if (opts.symbolicN) {
        trySymbolicN(prog, entry_index, width_hint, demand, opts, rp);
        // Feed the width-polymorphic verifier's validity set into the
        // proof record: lane-generic microcode equivalence plus a
        // structural safe-for-all-N verdict extends the claim past
        // the ladder widths the prover enumerated.
        TranslatorConfig config;
        const PolyRegion poly = analyzePoly(prog, entry_index, config);
        rp.symbolicN.polyValidity = poly.validity.summary;
        rp.symbolicN.polyUnbounded =
            poly.validity.structuralUnbounded;
        if (rp.symbolicN.proved) {
            if (rp.symbolicN.polyUnbounded)
                rp.symbolicN.summary +=
                    "; liquid-poly concurs: " + poly.validity.summary;
            return rp;
        }
    }

    for (const unsigned w : opts.widths) {
        WidthProof wp =
            proveAtWidth(prog, entry_index, width_hint, demand, w, opts);
        if (wp.verdict == ProofVerdict::Refuted && wp.ce && opts.replay)
            replayCounterexample(prog, w, *wp.ce);
        rp.widths.push_back(std::move(wp));
    }
    return rp;
}

ProgramProof
proveProgram(const Program &prog, const ProofOptions &opts)
{
    ProgramProof pp;
    const ProgramLiveness pl = solveProgramLiveness(prog);
    for (const HintedCall &call : prog.hintedCalls()) {
        pp.regions.push_back(proveRegion(prog, call.target,
                                         call.widthHint,
                                         pl.demandAt(call.target), opts));
    }
    return pp;
}

bool
replayCounterexample(const Program &prog, unsigned width,
                     Counterexample &ce)
{
    if (!ce.memOnly) {
        ce.replayNote = "replay skipped: counterexample constrains "
                        "non-memory entry state";
        return false;
    }
    const Program mod = withCeImage(prog, ce);
    const ChaosReference ref = makeReference(mod, width);
    const ChaosReport rep =
        checkSchedule(ref, mod, width, FaultSchedule{});
    ce.replayed = true;
    ce.replayConfirmed = !rep.equal;
    ce.replayMismatches = rep.mismatches;
    return ce.replayConfirmed;
}

bool
replayCounterexampleInjected(const Program &prog, unsigned width,
                             const UcodeEntry &ucode, Counterexample &ce)
{
    if (!ce.memOnly) {
        ce.replayNote = "replay skipped: counterexample constrains "
                        "non-memory entry state";
        return false;
    }
    const Program mod = withCeImage(prog, ce);
    const ChaosReference ref = makeReference(mod, width);
    const ChaosReport rep = checkUcodeInjection(ref, mod, width, ucode);
    ce.replayed = true;
    ce.replayConfirmed = !rep.equal;
    ce.replayMismatches = rep.mismatches;
    return ce.replayConfirmed;
}

// ---------------------------------------------------------------------------
// Sabotage suite.
// ---------------------------------------------------------------------------

namespace
{

std::vector<Word>
sabotageData(unsigned n, unsigned salt)
{
    std::vector<Word> v(n);
    for (unsigned i = 0; i < n; ++i) {
        v[i] = static_cast<Word>(
            static_cast<SWord>((i * 37 + salt * 101) % 401) - 200);
    }
    return v;
}

Program
buildSabotageProgram(const vir::Kernel &k,
                     const std::vector<std::string> &ins,
                     const std::vector<std::string> &outs,
                     EmitOptions::Sabotage sabotage, unsigned distance)
{
    Program prog;
    const unsigned n = k.tripCount() + 16;
    unsigned salt = 1;
    for (const std::string &name : ins)
        prog.allocWords(name, sabotageData(n, salt++));
    for (const std::string &name : outs)
        prog.allocData(name, n * 4);

    EmitOptions opts;
    opts.sabotage = sabotage;
    opts.sabotageDistance = distance;
    emitKernel(prog, k, opts);

    prog.defineLabel("main");
    for (int c = 0; c < 3; ++c)
        prog.addInst(Inst::call(-1, true, k.name(), k.maxWidth()));
    prog.addInst(Inst::halt());
    prog.resolveBranches();
    return prog;
}

vir::Kernel
addKernel(const std::string &name)
{
    vir::Kernel k(name, 16, 16);
    const int a = k.load(name + "_in0");
    const int b = k.load(name + "_in1");
    k.store(name + "_out0", k.bin(Opcode::Add, a, b));
    return k;
}

vir::Kernel
permKernel(const std::string &name)
{
    vir::Kernel k(name, 16, 8);
    const int a = k.load(name + "_in0");
    const int b = k.load(name + "_in1");
    const int c = k.bin(Opcode::Add, a, b);
    k.store(name + "_out0", k.perm(c, PermKind::SwapHalves, 4));
    return k;
}

vir::Kernel
cvecKernel(const std::string &name)
{
    vir::Kernel k(name, 16, 8);
    const int a = k.load(name + "_in0");
    k.store(name + "_out0", k.binConst(Opcode::Add, a, {3}));
    return k;
}

} // namespace

std::vector<SabotageOutcome>
runSabotageSuite(const ProofOptions &opts)
{
    std::vector<SabotageOutcome> out;

    auto regionOf = [](const Program &prog) {
        const auto calls = prog.hintedCalls();
        LIQUID_ASSERT(!calls.empty(), "sabotage program has no region");
        return calls.front();
    };

    // ---- abort-class sabotages: translation must not commit ----------
    struct AbortCase
    {
        const char *name;
        EmitOptions::Sabotage sabotage;
    };
    static const AbortCase abortCases[] = {
        {"untranslatableOp", EmitOptions::Sabotage::UntranslatableOp},
        {"nestedCall", EmitOptions::Sabotage::NestedCall},
        {"forwardBranch", EmitOptions::Sabotage::ForwardBranch},
        {"ivArithmetic", EmitOptions::Sabotage::IvArithmetic},
        {"scalarStore", EmitOptions::Sabotage::ScalarStore},
        {"overlapStoreAfterLoad",
         EmitOptions::Sabotage::OverlapStoreAfterLoad},
    };
    for (const AbortCase &c : abortCases) {
        const vir::Kernel k = addKernel(std::string("sab_") + c.name);
        const Program prog = buildSabotageProgram(
            k, {k.name() + "_in0", k.name() + "_in1"},
            {k.name() + "_out0"}, c.sabotage, 1);
        const HintedCall call = regionOf(prog);
        const ProgramLiveness pl = solveProgramLiveness(prog);
        const RegionProof rp =
            proveRegion(prog, call.target, call.widthHint,
                        pl.demandAt(call.target), opts);
        SabotageOutcome o;
        o.name = c.name;
        o.expect = "noTranslation";
        o.verdict = rp.overall();
        o.pass = o.verdict == ProofVerdict::NoTranslation;
        if (!rp.widths.empty())
            o.detail = rp.widths.front().summary;
        out.push_back(std::move(o));
    }

    // ---- miscompile-class sabotages: translation commits, wrongly ----
    struct OverlapCase
    {
        const char *name;
        EmitOptions::Sabotage sabotage;
    };
    static const OverlapCase overlapCases[] = {
        {"overlapStoreStore", EmitOptions::Sabotage::OverlapStoreStore},
        {"overlapLoadAhead", EmitOptions::Sabotage::OverlapLoadAhead},
    };
    for (const OverlapCase &c : overlapCases) {
        const vir::Kernel k = addKernel(std::string("sab_") + c.name);
        const Program prog = buildSabotageProgram(
            k, {k.name() + "_in0", k.name() + "_in1"},
            {k.name() + "_out0"}, c.sabotage, 1);
        const HintedCall call = regionOf(prog);
        const ProgramLiveness pl = solveProgramLiveness(prog);
        ProofOptions popts = opts;
        popts.replay = true;
        const RegionProof rp =
            proveRegion(prog, call.target, call.widthHint,
                        pl.demandAt(call.target), popts);
        SabotageOutcome o;
        o.name = c.name;
        o.expect = "refuted";
        o.verdict = rp.overall();
        bool allRefutedAndReplayed = !rp.widths.empty();
        for (const WidthProof &wp : rp.widths) {
            const bool good = wp.verdict == ProofVerdict::Refuted &&
                              wp.ce && wp.ce->replayed &&
                              wp.ce->replayConfirmed;
            allRefutedAndReplayed = allRefutedAndReplayed && good;
            if (!good && o.detail.empty()) {
                o.detail = "width " + std::to_string(wp.width) + ": " +
                           wp.summary;
            }
        }
        o.replayConfirmed = allRefutedAndReplayed;
        o.pass = allRefutedAndReplayed;
        if (o.pass && !rp.widths.empty())
            o.detail = rp.widths.front().summary;
        out.push_back(std::move(o));
    }

    // ---- microcode mutations: committed entry, corrupted ------------
    struct MutationCase
    {
        const char *name;
        vir::Kernel (*kernel)(const std::string &);
        bool (*mutate)(UcodeEntry &);
    };
    static const MutationCase mutationCases[] = {
        {"abandonedUcodeTail", addKernel,
         [](UcodeEntry &e) {
             if (e.insts.empty())
                 return false;
             e.insts.pop_back();  // drop the backedge: one iteration
             return true;
         }},
        {"wrongOpcode", addKernel,
         [](UcodeEntry &e) {
             for (Inst &in : e.insts) {
                 if (in.op == Opcode::Vadd) {
                     in.op = Opcode::Vsub;
                     return true;
                 }
             }
             return false;
         }},
        {"wrongIvStep", addKernel,
         [](UcodeEntry &e) {
             for (Inst &in : e.insts) {
                 if (in.op == Opcode::Add && in.hasImm &&
                     in.dst == in.src1 &&
                     in.imm ==
                         static_cast<std::int32_t>(e.simdWidth)) {
                     ++in.imm;
                     return true;
                 }
             }
             return false;
         }},
        {"droppedStore", addKernel,
         [](UcodeEntry &e) {
             for (std::size_t j = 0; j < e.insts.size(); ++j) {
                 if (e.insts[j].isStore()) {
                     e.insts.erase(e.insts.begin() +
                                   static_cast<std::ptrdiff_t>(j));
                     return true;
                 }
             }
             return false;
         }},
        {"permFlip", permKernel,
         [](UcodeEntry &e) {
             for (Inst &in : e.insts) {
                 if (in.op == Opcode::Vperm) {
                     in.permKind = in.permKind == PermKind::RotUp
                                       ? PermKind::RotDown
                                       : PermKind::RotUp;
                     return true;
                 }
             }
             return false;
         }},
        {"cvecCorrupt", cvecKernel,
         [](UcodeEntry &e) {
             if (e.cvecs.empty() || e.cvecs[0].lanes.empty())
                 return false;
             e.cvecs[0].lanes[0] += 17;
             return true;
         }},
    };
    const unsigned mutWidth = 4;
    for (const MutationCase &c : mutationCases) {
        const vir::Kernel k = c.kernel(std::string("sab_") + c.name);
        const Program prog = buildSabotageProgram(
            k, {k.name() + "_in0", k.name() + "_in1"},
            {k.name() + "_out0"}, EmitOptions::Sabotage::None, 1);
        const HintedCall call = regionOf(prog);
        const ProgramLiveness pl = solveProgramLiveness(prog);

        SabotageOutcome o;
        o.name = c.name;
        o.expect = "refuted";

        OfflineResult off = translateOffline(prog, call.target, mutWidth,
                                             call.widthHint);
        if (!off.ok) {
            o.detail = "baseline translation failed: " +
                       off.abortReason;
            out.push_back(std::move(o));
            continue;
        }
        UcodeEntry mutated = off.entry;
        if (!c.mutate(mutated)) {
            o.detail = "mutation target not found in microcode";
            out.push_back(std::move(o));
            continue;
        }

        WidthProof wp = proveTranslation(prog, call.target, mutated,
                                         pl.demandAt(call.target), opts);
        o.verdict = wp.verdict;
        o.detail = wp.summary;
        if (wp.verdict == ProofVerdict::Refuted && wp.ce) {
            replayCounterexampleInjected(prog, mutWidth, mutated,
                                         *wp.ce);
            o.replayConfirmed = wp.ce->replayConfirmed;
        }
        o.pass = wp.verdict == ProofVerdict::Refuted && o.replayConfirmed;
        out.push_back(std::move(o));
    }

    return out;
}

} // namespace liquid
