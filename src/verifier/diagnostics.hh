/**
 * @file
 * Structured diagnostics emitted by the static conformance verifier.
 *
 * Severity contract (the differential tests key on it):
 *  - Ok:    the dynamic translator will commit this region; the report
 *           carries the predicted binding width and microcode size.
 *  - Error: the dynamic translator will abort, with the predicted
 *           AbortReason — unless RegionReport::depMiscompile is set,
 *           in which case the translator commits but the committed
 *           microcode provably diverges from scalar semantics.
 *  - Warn:  the outcome depends on runtime state the analysis cannot
 *           see (a branch on runtime data, an unexercised path, an
 *           interrupt); the message names the runtime condition.
 */

#ifndef LIQUID_VERIFIER_DIAGNOSTICS_HH
#define LIQUID_VERIFIER_DIAGNOSTICS_HH

#include <string>
#include <vector>

#include "translator/abort_reason.hh"
#include "verifier/depcheck.hh"

namespace liquid
{

/** How certain the verifier is about one finding. */
enum class Severity : std::uint8_t
{
    Ok,
    Warn,
    Error,
};

/** Printable severity ("ok", "warn", "error"). */
const char *severityName(Severity severity);

/** One finding about a region. */
struct Diagnostic
{
    Severity severity = Severity::Ok;
    /** Predicted dynamic abort reason; None unless severity is Error. */
    AbortReason reason = AbortReason::None;
    /** Instruction index the finding anchors to; -1 when region-wide. */
    int instIndex = -1;
    std::string message;
};

/** The verifier's verdict on one outlined region. */
struct RegionReport
{
    int entryIndex = -1;           ///< region entry instruction index
    std::string entryLabel;        ///< label at the entry, if any
    unsigned requestedWidth = 0;   ///< accelerator width verified against
    unsigned widthHint = 0;        ///< bl.simd compiled width (0 = none)

    Severity verdict = Severity::Ok;
    /** Predicted abort reason when the verdict is Error. */
    AbortReason reason = AbortReason::None;

    // Predictions, valid when the verdict is Ok.
    unsigned predictedWidth = 0;   ///< width the region binds at
    unsigned predictedUcode = 0;   ///< microcode instructions after collapse
    unsigned predictedCvecs = 0;   ///< constant vectors interned

    // Cost-model estimate, valid when the verdict is Ok.
    double predictedScalarCycles = 0.0;  ///< scalar loop dynamic insts
    double predictedSimdCycles = 0.0;    ///< translated-region estimate
    double predictedSpeedup = 0.0;       ///< scalar / simd

    /**
     * Memory-dependence analysis of the region (tentpole). When
     * depAnalyzed is set, `dep` holds the full stride/distance
     * analysis; an Ok verdict carries the safety proof and an Error
     * verdict with depMiscompile set predicts that the translator
     * COMMITS but the committed microcode diverges from scalar
     * semantics (a silent miscompile the dynamic dependence check
     * cannot see). depMiscompile is the one case where an Error
     * verdict does not predict a dynamic abort.
     */
    bool depAnalyzed = false;
    bool depMiscompile = false;
    DepcheckResult dep;

    /**
     * Translation-validation attachment (VerifyOptions::prove): the
     * prover's verdict at the predicted width ("proved", "refuted",
     * "unknown"), empty when the prover did not run. A Proved verdict
     * is what upgraded a depcheck Warn to Ok; a Refuted one is a
     * depMiscompile-style Error backed by a concrete counterexample.
     */
    std::string proofVerdict;
    std::string proofSummary;      ///< one-line proof outcome

    /**
     * Range-analysis attachment (VerifyOptions::ranges): the proven
     * entry facts the mirror/depcheck walks consumed (each also
     * surfaced as a `range:` Ok diagnostic), and how many depcheck
     * width verdicts the footprint/congruence argument discharged to
     * Safe past the pair-test budget.
     */
    std::vector<std::string> rangeFacts;
    unsigned rangeDischarged = 0;

    /**
     * Width-polymorphic attachment (VerifyOptions::poly): the validity
     * set from liquid-poly — a one-line predicate on N, the exact Ok
     * widths within the probe horizon, and the rendered interval ×
     * congruence constraints. polyUnbounded is the structural
     * safe-for-all-N claim with the observed trip data factored out.
     */
    bool polyAnalyzed = false;
    bool polyUnbounded = false;
    std::string polySummary;
    std::vector<unsigned> polyOkWidths;
    std::vector<std::string> polyConstraints;

    // Static structure, always valid.
    unsigned blockCount = 0;       ///< CFG basic blocks
    unsigned loopCount = 0;        ///< CFG natural loops
    unsigned analyzedInsts = 0;    ///< abstract retires walked

    std::vector<Diagnostic> diags;
};

/** Whole-program verification results. */
struct ProgramReport
{
    std::vector<RegionReport> regions;

    bool anyError() const;
};

/** Multi-line human-readable report for one region (CLI output). */
std::string formatRegionReport(const RegionReport &report);

} // namespace liquid

#endif // LIQUID_VERIFIER_DIAGNOSTICS_HH
