/**
 * @file
 * liquid-proof: symbolic translation validation with counterexample
 * replay (library API; the CLI front-end is tools/liquid_proof).
 *
 * The prover closes the loop the static verifier leaves open: instead
 * of predicting *whether* the translator commits, it checks that what
 * the translator commits is *correct*. For one region and one width it
 * symbolically executes (a) the scalar region and (b) the microcode the
 * offline translator produced — which is instruction-identical to what
 * the hardware translator commits — over the shared term domain of
 * symexec.hh, then proves that under the region's liveness contract
 * (solveProgramLiveness) both runs agree on
 *
 *   - the store set: every element address written, with equal values
 *     under the store granularity's truncation, and
 *   - every demanded live-out register (the caller-read accumulators).
 *
 * Obligations the normalizing term pool does not close by construction
 * are discharged by exhaustive small-domain enumeration (see PROOF.md
 * for the completeness argument and its limits). A failed obligation
 * yields a concrete counterexample — an initial-memory image — which is
 * replayed through the chaos oracle to confirm the divergence is
 * architectural, not an artifact of the symbolic model.
 *
 * The width-polymorphic mode (ProofOptions::symbolicN) proves the
 * per-lane body obligation once with the iteration index and lane index
 * as opaque parameters, covering every width whose microcode is
 * structurally width-generic. It only ever *proves*: enumeration over
 * unconstrained parameters is sound for a universal claim but not for
 * refutation, so any failure falls back to the per-width proofs.
 */

#ifndef LIQUID_VERIFIER_PROOF_HH
#define LIQUID_VERIFIER_PROOF_HH

#include <optional>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "memory/ucode_cache.hh"
#include "verifier/liveness.hh"

namespace liquid
{

struct ProgramRanges;

/** Outcome of one proof attempt. */
enum class ProofVerdict : std::uint8_t
{
    Proved,        ///< every obligation discharged
    Refuted,       ///< a concrete counterexample distinguishes the runs
    Unknown,       ///< an obligation exceeded the discharge budget
    NoTranslation, ///< no microcode commits at this width (vacuous)
};

/** Canonical verdict name: "proved", "refuted", ... */
const char *proofVerdictName(ProofVerdict verdict);

/** Severity order: Refuted > Unknown > Proved > NoTranslation. */
ProofVerdict worseProofVerdict(ProofVerdict a, ProofVerdict b);

/** One leaf assignment of a counterexample environment. */
struct CeAssignment
{
    std::string sym;      ///< printable symbol name
    Word value = 0;       ///< assigned (post-extension) value
    bool isMem = false;   ///< an initial-memory element
    Addr addr = 0;        ///< isMem: element address
    unsigned size = 4;    ///< isMem: element size in bytes
};

/** A concrete counterexample extracted from a failed obligation. */
struct Counterexample
{
    std::vector<CeAssignment> assigns;
    std::string obligation;   ///< which obligation failed
    Word scalarValue = 0;     ///< obligation LHS under the environment
    Word simdValue = 0;       ///< obligation RHS under the environment
    /** True when every assigned leaf is an initial-memory element, so
     *  the environment is realizable as a program data image. */
    bool memOnly = false;
    bool replayed = false;          ///< a chaos-oracle replay was run
    bool replayConfirmed = false;   ///< the replay diverged as predicted
    std::string replayNote;         ///< why a replay was skipped
    std::vector<std::string> replayMismatches;
};

/** Proof result for one region at one requested width. */
struct WidthProof
{
    unsigned width = 0;       ///< requested accelerator width
    unsigned boundWidth = 0;  ///< width the microcode committed at
    ProofVerdict verdict = ProofVerdict::Unknown;
    std::string summary;      ///< one-line outcome description
    unsigned obligations = 0;
    unsigned closedStructural = 0;  ///< equal after normalization
    unsigned closedEnum = 0;        ///< closed by enumeration
    unsigned unknownObligations = 0;
    std::uint64_t enumPoints = 0;   ///< concrete points evaluated
    /** Enumeration leaves pinned to proven region-entry constants. */
    unsigned rangePinned = 0;
    std::optional<Counterexample> ce;
    /** Covered by the single width-generic (symbolic-N) proof. */
    bool widthGeneric = false;
};

/** Outcome of the width-polymorphic proof attempt. */
struct SymbolicNProof
{
    bool attempted = false;
    bool proved = false;
    std::string summary;  ///< why it did not apply / did not close
    unsigned obligations = 0;
    std::uint64_t enumPoints = 0;
    /**
     * Corroboration from the width-polymorphic static verifier
     * (poly.hh): polyValidity is its predicate on N, and
     * polyUnbounded says the rules/depcheck side also verifies for
     * arbitrarily large N — together with `proved` (microcode
     * equivalence at every ladder width plus the width-generic lane
     * argument) this extends the claim past the ladder.
     */
    bool polyUnbounded = false;
    std::string polyValidity;
};

/** Proof results for one region across the requested widths. */
struct RegionProof
{
    int entryIndex = -1;
    std::string entryLabel;
    unsigned widthHint = 0;
    RegSet demand;            ///< demanded live-outs proved equal
    std::vector<WidthProof> widths;
    SymbolicNProof symbolicN;

    /** Worst verdict across widths (NoTranslation when empty). */
    ProofVerdict overall() const;
};

/** Proof results for every hinted region of a program. */
struct ProgramProof
{
    std::vector<RegionProof> regions;

    ProofVerdict overall() const;
    unsigned count(ProofVerdict verdict) const;
};

/** Prover options. */
struct ProofOptions
{
    /** Accelerator widths to prove (the fallback ladder's rungs). */
    std::vector<unsigned> widths{2, 4, 8, 16};
    /** Try the width-polymorphic proof before the per-width ones. */
    bool symbolicN = false;
    /** Replay refutations through the chaos oracle. */
    bool replay = true;
    /** Symbolic-step budget per run (scalar region or microcode). */
    std::uint64_t maxSteps = 1'000'000;
    /** Obligations with more distinct leaves than this are Unknown. */
    unsigned maxEnumLeaves = 8;
    /**
     * Whole-program value-range analysis (range.hh). When set and
     * sound, an initial-memory leaf whose cell the analysis proves
     * constant at region entry enumerates only that value: it stops
     * counting against maxEnumLeaves and its corner sweep collapses
     * to one point. The equivalence claim correspondingly narrows
     * from all syntactic environments to the environments the program
     * can actually reach — which is what the verifier asserts.
     * Refutations remain realizable (the pinned value is the one the
     * program image produces).
     */
    const ProgramRanges *ranges = nullptr;
};

/**
 * The recursion-free core: prove that executing @p ucode is
 * architecturally equivalent to executing the scalar region at
 * @p entry_index, for the store set and the registers in @p demand.
 * Does not translate, does not replay — callers own both.
 */
WidthProof proveTranslation(const Program &prog, int entry_index,
                            const UcodeEntry &ucode, const RegSet &demand,
                            const ProofOptions &opts);

/**
 * Prove one region at every requested width: runs the offline
 * translator's width-fallback cascade (from min(width, hint), halving
 * on width-dependent aborts — exactly the microcode the hardware
 * commits), then proveTranslation on the committed entry. Refutations
 * are replayed through the chaos oracle when opts.replay is set.
 */
RegionProof proveRegion(const Program &prog, int entry_index,
                        unsigned width_hint, const RegSet &demand,
                        const ProofOptions &opts);

/**
 * Prove every hinted region of @p prog, sharing one interprocedural
 * liveness solution for the live-out contracts.
 */
ProgramProof proveProgram(const Program &prog, const ProofOptions &opts);

/**
 * Replay @p ce as a program run: apply its initial-memory writes to a
 * copy of @p prog, re-derive the scalar reference, run Liquid mode at
 * @p width fault-free and record whether the architectural state
 * diverges. Returns ce.replayConfirmed. Requires ce.memOnly.
 */
bool replayCounterexample(const Program &prog, unsigned width,
                          Counterexample &ce);

/**
 * Replay @p ce against a specific microcode entry: like
 * replayCounterexample, but @p ucode is pre-injected into the
 * microcode cache (ready at cycle 0) so the core executes it instead
 * of the translator's own commit — the replay path for mutated-ucode
 * refutations.
 */
bool replayCounterexampleInjected(const Program &prog, unsigned width,
                                  const UcodeEntry &ucode,
                                  Counterexample &ce);

/** One sabotage scenario's outcome. */
struct SabotageOutcome
{
    std::string name;      ///< scenario name, e.g. "overlapStoreStore"
    std::string expect;    ///< "noTranslation" or "refuted"
    ProofVerdict verdict = ProofVerdict::Unknown;
    bool replayConfirmed = false;  ///< refutations only
    bool pass = false;     ///< verdict (and replay) matched expectation
    std::string detail;
};

/**
 * The adversarial gate: run the prover against every scalarizer
 * sabotage mode (EmitOptions::Sabotage) plus a set of direct microcode
 * mutations (truncated tail, wrong opcode, wrong IV step, dropped
 * store, flipped permutation, corrupted constant vector). Abort-class
 * sabotages must come back NoTranslation; miscompile-class sabotages
 * and every mutation must come back Refuted with a chaos-replay-
 * confirmed counterexample.
 */
std::vector<SabotageOutcome> runSabotageSuite(const ProofOptions &opts);

} // namespace liquid

#endif // LIQUID_VERIFIER_PROOF_HH
