#include "verifier/cfg.hh"

#include <algorithm>
#include <map>
#include <set>

namespace liquid
{

namespace
{

/** Instruction-level successors within the program text. */
std::vector<int>
instSuccessors(const Program &prog, int index, bool &falls_off)
{
    const auto &code = prog.code();
    const Inst &inst = code[index];
    const int next = index + 1;
    const bool has_next = next < static_cast<int>(code.size());

    std::vector<int> succs;
    switch (inst.op) {
      case Opcode::Ret:
      case Opcode::Halt:
        return succs;
      case Opcode::B:
        if (inst.target >= 0 &&
            inst.target < static_cast<int>(code.size()))
            succs.push_back(inst.target);
        if (inst.cond != Cond::AL) {
            if (has_next)
                succs.push_back(next);
            else
                falls_off = true;
        }
        return succs;
      default:
        // bl falls through once the callee returns.
        if (has_next)
            succs.push_back(next);
        else
            falls_off = true;
        return succs;
    }
}

} // namespace

RegionCfg
RegionCfg::build(const Program &prog, int entry_index)
{
    RegionCfg cfg;
    cfg.entry_ = entry_index;
    const auto &code = prog.code();
    if (entry_index < 0 || entry_index >= static_cast<int>(code.size()))
        return cfg;

    // Reachability sweep, collecting leaders as we go.
    std::set<int> reachable;
    std::set<int> leaders{entry_index};
    std::vector<int> work{entry_index};
    while (!work.empty()) {
        const int i = work.back();
        work.pop_back();
        if (!reachable.insert(i).second)
            continue;
        const Inst &inst = code[i];
        if (inst.op == Opcode::B && inst.cond != Cond::AL)
            cfg.condBranches_.push_back(i);
        if (inst.op == Opcode::Bl)
            cfg.calls_.push_back(i);
        const auto succs = instSuccessors(prog, i, cfg.fallsOffEnd_);
        for (const int s : succs) {
            work.push_back(s);
            // A branch target starts a block; so does the instruction
            // after any branch.
            if (inst.op == Opcode::B) {
                leaders.insert(s);
            }
        }
    }
    cfg.insts_.assign(reachable.begin(), reachable.end());
    std::sort(cfg.condBranches_.begin(), cfg.condBranches_.end());
    std::sort(cfg.calls_.begin(), cfg.calls_.end());

    // Split reachable instructions into blocks at leaders and
    // control-transfer boundaries.
    std::map<int, int> blockOfLeader;
    for (std::size_t p = 0; p < cfg.insts_.size(); ++p) {
        const int i = cfg.insts_[p];
        const bool prev_adjacent =
            p > 0 && cfg.insts_[p - 1] == i - 1;
        const bool prev_flows =
            prev_adjacent &&
            [&] {
                const Inst &prev = code[i - 1];
                return !(prev.op == Opcode::Ret ||
                         prev.op == Opcode::Halt ||
                         (prev.op == Opcode::B &&
                          prev.cond == Cond::AL));
            }();
        const bool starts =
            cfg.blocks_.empty() || leaders.count(i) || !prev_flows ||
            !prev_adjacent;
        if (starts) {
            BasicBlock bb;
            bb.first = bb.last = i;
            blockOfLeader[i] = static_cast<int>(cfg.blocks_.size());
            cfg.blocks_.push_back(bb);
        } else {
            cfg.blocks_.back().last = i;
        }
        // A branch (or region exit) ends its block; the *next*
        // reachable instruction starts a new one even if not a leader.
        const Inst &inst = code[i];
        if (inst.op == Opcode::B || inst.op == Opcode::Ret ||
            inst.op == Opcode::Halt)
            leaders.insert(i + 1);
    }

    // Block-level edges.
    for (std::size_t b = 0; b < cfg.blocks_.size(); ++b) {
        BasicBlock &bb = cfg.blocks_[b];
        bool dummy = false;
        for (const int s : instSuccessors(prog, bb.last, dummy)) {
            auto it = blockOfLeader.find(s);
            if (it == blockOfLeader.end()) {
                // Successor is mid-block (a branch into a block body):
                // find the containing block.
                const int sb = cfg.blockOf(s);
                if (sb >= 0)
                    bb.succs.push_back(sb);
                continue;
            }
            bb.succs.push_back(it->second);
        }
        for (const int s : bb.succs)
            cfg.blocks_[static_cast<std::size_t>(s)].preds.push_back(
                static_cast<int>(b));
    }

    // Back edges via iterative DFS (edge to a block on the stack).
    enum class Color : std::uint8_t { White, Grey, Black };
    std::vector<Color> color(cfg.blocks_.size(), Color::White);
    struct Frame
    {
        int block;
        std::size_t next = 0;
    };
    std::vector<Frame> stack;
    if (!cfg.blocks_.empty()) {
        stack.push_back(Frame{0});
        color[0] = Color::Grey;
    }
    while (!stack.empty()) {
        Frame &f = stack.back();
        const BasicBlock &bb =
            cfg.blocks_[static_cast<std::size_t>(f.block)];
        if (f.next < bb.succs.size()) {
            const int s = bb.succs[f.next++];
            if (color[static_cast<std::size_t>(s)] == Color::Grey) {
                cfg.loops_.push_back(
                    CfgLoop{s, f.block, bb.last});
            } else if (color[static_cast<std::size_t>(s)] ==
                       Color::White) {
                color[static_cast<std::size_t>(s)] = Color::Grey;
                stack.push_back(Frame{s});
            }
        } else {
            color[static_cast<std::size_t>(f.block)] = Color::Black;
            stack.pop_back();
        }
    }

    return cfg;
}

bool
RegionCfg::contains(int index) const
{
    return std::binary_search(insts_.begin(), insts_.end(), index);
}

int
RegionCfg::blockOf(int index) const
{
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        if (index >= blocks_[b].first && index <= blocks_[b].last)
            return static_cast<int>(b);
    }
    return -1;
}

} // namespace liquid
