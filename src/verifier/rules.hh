/**
 * @file
 * Static Table-1/Table-3 conformance analysis of one outlined region.
 *
 * analyzeRegion() walks the region's instructions from the entry,
 * driving two coupled machines:
 *  - an AbsMachine (dataflow.hh) that supplies the values the dynamic
 *    translator would have observed on the retire bus, and
 *  - a static mirror of the Translator's rule automaton (build /
 *    verify / finalize / commit), identical decision-for-decision to
 *    src/translator/translator.cc but consuming AbsRetire records
 *    instead of hardware retires.
 *
 * The outcome is therefore a *prediction* of translateOffline() at the
 * same width: Ok predicts a commit (with the exact microcode size and
 * constant-pool count), Error predicts an abort with the given reason,
 * and Warn means some decision needed runtime state the analysis
 * cannot see (a branch on non-constant data, control flow leaving the
 * text, a region longer than the analysis budget).
 */

#ifndef LIQUID_VERIFIER_RULES_HH
#define LIQUID_VERIFIER_RULES_HH

#include <string>
#include <vector>

#include "asm/program.hh"
#include "translator/translator.hh"
#include "verifier/diagnostics.hh"

namespace liquid
{

/** Result of statically analyzing one region at one binding width. */
struct StaticOutcome
{
    Severity verdict = Severity::Ok;
    AbortReason reason = AbortReason::None;  ///< Error: predicted abort
    int reasonIndex = -1;   ///< instruction index where it was decided
    std::string warnCondition;  ///< Warn: the runtime condition

    // Predictions, valid when the verdict is Ok.
    unsigned ucodeInsts = 0;  ///< microcode size after collapse
    unsigned cvecs = 0;       ///< constant vectors interned
    unsigned loopsVerified = 0;
    unsigned ucodeLoopInsts = 0;  ///< collapsed slots inside loop bodies
    unsigned loopIters = 0;       ///< scalar iterations across all loops

    unsigned analyzedInsts = 0;   ///< abstract retires observed
    std::vector<int> visited;     ///< distinct instruction indices walked
    /** External range facts the walk consumed (for diagnostics). */
    std::vector<std::string> factsUsed;
};

class EntryFacts;

/**
 * Statically analyze the region entered at @p entry_index, bound at
 * @p capture_width lanes (the caller applies the width hint and any
 * fallback halving, mirroring Translator::onCall). @p facts supplies
 * proven region-entry values from the whole-program range analysis;
 * null reproduces the facts-free walk.
 */
StaticOutcome analyzeRegion(const Program &prog, int entry_index,
                            const TranslatorConfig &config,
                            unsigned capture_width,
                            const EntryFacts *facts = nullptr);

} // namespace liquid

#endif // LIQUID_VERIFIER_RULES_HH
