/**
 * @file
 * Static Table-1/Table-3 conformance analysis of one outlined region.
 *
 * analyzeRegion() walks the region's instructions from the entry,
 * driving two coupled machines:
 *  - an AbsMachine (dataflow.hh) that supplies the values the dynamic
 *    translator would have observed on the retire bus, and
 *  - a static mirror of the Translator's rule automaton (build /
 *    verify / finalize / commit), identical decision-for-decision to
 *    src/translator/translator.cc but consuming AbsRetire records
 *    instead of hardware retires.
 *
 * The outcome is therefore a *prediction* of translateOffline() at the
 * same width: Ok predicts a commit (with the exact microcode size and
 * constant-pool count), Error predicts an abort with the given reason,
 * and Warn means some decision needed runtime state the analysis
 * cannot see (a branch on non-constant data, control flow leaving the
 * text, a region longer than the analysis budget).
 */

#ifndef LIQUID_VERIFIER_RULES_HH
#define LIQUID_VERIFIER_RULES_HH

#include <string>
#include <vector>

#include "asm/program.hh"
#include "translator/translator.hh"
#include "verifier/diagnostics.hh"

namespace liquid
{

/** Result of statically analyzing one region at one binding width. */
struct StaticOutcome
{
    Severity verdict = Severity::Ok;
    AbortReason reason = AbortReason::None;  ///< Error: predicted abort
    int reasonIndex = -1;   ///< instruction index where it was decided
    std::string warnCondition;  ///< Warn: the runtime condition

    // Predictions, valid when the verdict is Ok.
    unsigned ucodeInsts = 0;  ///< microcode size after collapse
    unsigned cvecs = 0;       ///< constant vectors interned
    unsigned loopsVerified = 0;
    unsigned ucodeLoopInsts = 0;  ///< collapsed slots inside loop bodies
    unsigned loopIters = 0;       ///< scalar iterations across all loops

    unsigned analyzedInsts = 0;   ///< abstract retires observed
    std::vector<int> visited;     ///< distinct instruction indices walked
    /** External range facts the walk consumed (for diagnostics). */
    std::vector<std::string> factsUsed;
};

class EntryFacts;

/**
 * Observer for the width-dependent checks of the rule automaton
 * (liquid-poly). When a sink is installed, analyzeRegion runs one
 * width-*independent* walk: every check that consults the binding
 * width is reported to the sink instead of being evaluated, and the
 * walk continues as if it had passed (streams capture every lane,
 * trip-count/lane-count/permutation aborts are deferred). The sink
 * receives the checks in exact program order, so replaying them
 * against a concrete N reproduces the width-bound walk's first abort.
 * Width-independent aborts (address/IV mismatch, the store-vs-load
 * interval test, commit-time shape checks) still fire normally.
 */
class WidthCheckSink
{
  public:
    virtual ~WidthCheckSink() = default;
    /** Stream @p stream seeded with lane 0 (= @p value) at build. */
    virtual void onStreamSeed(int stream, Word value) = 0;
    /** Constant-pool load observed lane @p elem with @p value. */
    virtual void onStreamLane(int inst_index, int stream,
                              std::size_t elem, Word value) = 0;
    /** Loop at @p inst_index finalized after @p iters iterations. */
    virtual void onTripCount(int inst_index, unsigned iters) = 0;
    /** Patch on @p stream finalized having seen @p observed lanes. */
    virtual void onLanes(int inst_index, int stream,
                         std::size_t observed) = 0;
    /** Permutation patch on @p stream (load or store side). */
    virtual void onPerm(int inst_index, int stream, bool is_store) = 0;
};

/**
 * Statically analyze the region entered at @p entry_index, bound at
 * @p capture_width lanes (the caller applies the width hint and any
 * fallback halving, mirroring Translator::onCall). @p facts supplies
 * proven region-entry values from the whole-program range analysis;
 * null reproduces the facts-free walk. A non-null @p poly switches the
 * walk into the width-polymorphic recording mode described on
 * WidthCheckSink; capture_width then only scales emitted IV strides
 * and must not affect the outcome.
 */
StaticOutcome analyzeRegion(const Program &prog, int entry_index,
                            const TranslatorConfig &config,
                            unsigned capture_width,
                            const EntryFacts *facts = nullptr,
                            WidthCheckSink *poly = nullptr);

} // namespace liquid

#endif // LIQUID_VERIFIER_RULES_HH
