/**
 * @file
 * Register-liveness dataflow over a RegionCfg plus the CFG facts the
 * whole-binary scanner's region-boundary contract needs (dominators,
 * reducibility, per-instruction use/def effects).
 *
 * The analysis is a classic backward may-liveness fixpoint over the
 * region's basic blocks. Registers are tracked by their flat number
 * (RegId::flat(), 0..63 across the four classes) in a 64-bit set, so
 * set operations are single machine words. Calls inside the region are
 * summarized by FnSummary (what the callee reads at entry, what it may
 * write), which lets the scanner solve all functions of a binary to a
 * joint fixpoint bottom-up.
 *
 * What this buys the scanner: the paper's region-boundary contract
 * (Section 3's outlining discipline) is a statement about liveness —
 * an outlined region is self-contained (no scalar live-ins), returns
 * results only through scalar registers the caller reads back
 * (accumulators), keeps its induction variables private, and never
 * spills inside the loop body. None of that is checkable from the
 * Table-1 rule mirror alone, which assumes the scalarizer already
 * enforced the discipline.
 */

#ifndef LIQUID_VERIFIER_LIVENESS_HH
#define LIQUID_VERIFIER_LIVENESS_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "verifier/cfg.hh"

namespace liquid
{

/** A set of architectural registers, keyed by RegId::flat(). */
class RegSet
{
  public:
    void
    add(RegId reg)
    {
        if (reg.isValid())
            bits_ |= 1ull << reg.flat();
    }

    void remove(RegId reg)
    {
        if (reg.isValid())
            bits_ &= ~(1ull << reg.flat());
    }

    bool
    contains(RegId reg) const
    {
        return reg.isValid() && (bits_ & (1ull << reg.flat()));
    }

    bool empty() const { return bits_ == 0; }
    unsigned count() const;

    RegSet &
    operator|=(const RegSet &o)
    {
        bits_ |= o.bits_;
        return *this;
    }

    RegSet &
    operator&=(const RegSet &o)
    {
        bits_ &= o.bits_;
        return *this;
    }

    /** Set difference: registers in this set but not in @p o. */
    RegSet
    minus(const RegSet &o) const
    {
        RegSet r;
        r.bits_ = bits_ & ~o.bits_;
        return r;
    }

    bool operator==(const RegSet &o) const { return bits_ == o.bits_; }

    /** Members in flat order. */
    std::vector<RegId> regs() const;

    /** Members restricted to one register class. */
    RegSet ofClass(RegClass cls) const;

    /** True if any member is a vector-class register. */
    bool anyVector() const;

    /** Comma-separated register names, e.g. "r1, f2"; "-" if empty. */
    std::string str() const;

  private:
    std::uint64_t bits_ = 0;
};

/** What one instruction reads and writes (registers only). */
struct InstEffects
{
    RegSet uses;
    RegSet defs;
};

/**
 * Use/def effects of @p inst. Conditional register writes (cond !=
 * AL on a dst-writing opcode) also *use* the destination: the old
 * value survives when the condition fails. Bl and Ret report no
 * effects — interprocedural flow is the caller's job (FnSummary).
 */
InstEffects instEffects(const Inst &inst);

/**
 * Liveness summary of a callee, used to transfer bl sites: a call
 * kills mayDef and then demands liveIn.
 */
struct FnSummary
{
    RegSet liveIn;   ///< registers the callee reads before writing
    RegSet mayDef;   ///< registers the callee may write
};

/** Backward may-liveness over one region CFG. */
class Liveness
{
  public:
    /**
     * Solve liveness for @p cfg. @p callees maps a bl target
     * instruction index to its summary; bl sites whose target is
     * absent are treated as no-ops (conservative for self-contained
     * kernels, exact once the scanner reaches its joint fixpoint).
     * @p exit_live is what the environment reads after the region
     * returns (ret and falls-off-end paths).
     */
    static Liveness run(const Program &prog, const RegionCfg &cfg,
                        const std::map<int, FnSummary> &callees = {},
                        const RegSet &exit_live = {});

    /** Live registers immediately before instruction @p index. */
    const RegSet &liveBefore(int index) const;

    /** Live registers immediately after instruction @p index. */
    const RegSet &liveAfter(int index) const;

    /** Live-in at the region entry (the region's demands on callers). */
    const RegSet &entryLiveIn() const;

    /** Union of defs over all reachable instructions (incl. callees). */
    const RegSet &mayDef() const { return mayDef_; }

    /** This region's callee summary. */
    FnSummary summary() const { return FnSummary{entryLiveIn(), mayDef_}; }

  private:
    std::map<int, RegSet> before_;
    std::map<int, RegSet> after_;
    RegSet entryLive_;
    RegSet mayDef_;
    RegSet emptySet_;
};

/**
 * Whole-program joint liveness solution: every bl target (hinted or
 * not) is an outlined function under the bl/ret convention, and all
 * functions plus the program entry are solved to a fixpoint where each
 * call site kills the callee's mayDef and demands its liveIn, while
 * each callee's exit-liveness is the union of what its callers read
 * after the bl (the `demand` map — the region's live-out contract).
 *
 * Shared by the whole-binary scanner (region-boundary contract checks)
 * and the translation-validation prover (which registers a proof must
 * show equal after scalar and microcode execution).
 */
struct ProgramLiveness
{
    /** Discovery facts about one bl target. */
    struct FnFacts
    {
        unsigned callSites = 0;
        bool hinted = false;      ///< some call site carried bl.simd
        unsigned widthHint = 0;   ///< largest bl.simd width seen
    };

    std::map<int, FnFacts> fns;       ///< discovered bl targets
    std::set<int> entries;            ///< fns plus the program entry
    std::map<int, RegionCfg> cfgs;    ///< per-entry region CFG
    std::map<int, Liveness> live;     ///< per-entry solved liveness
    std::map<int, FnSummary> summaries;
    /** Demanded live-outs: registers some caller reads after a bl. */
    std::map<int, RegSet> demand;

    /** Demanded live-out set of one entry; empty if never called. */
    RegSet demandAt(int entry_index) const;
};

/** Solve @p prog's interprocedural liveness to a joint fixpoint. */
ProgramLiveness solveProgramLiveness(const Program &prog);

/**
 * Dominator sets of @p cfg's blocks: result[b] lists the blocks that
 * dominate block b (including b itself). Entry block is block 0's
 * containing block of the region entry.
 */
std::vector<std::vector<bool>> blockDominators(const RegionCfg &cfg);

/**
 * True if @p loop is a natural (reducible) loop: its head dominates
 * its latch. A back edge whose target does not dominate its source
 * means control enters the loop body around the head — irreducible
 * flow the translator's single-entry capture cannot represent.
 */
bool loopIsReducible(const RegionCfg &cfg, const CfgLoop &loop,
                     const std::vector<std::vector<bool>> &dominators);

} // namespace liquid

#endif // LIQUID_VERIFIER_LIVENESS_HH
