#include "verifier/dataflow.hh"

#include "cpu/exec.hh"

namespace liquid
{

AbsVal
AbsMachine::read(RegId id) const
{
    if (!id.isValid())
        return AbsVal::top();
    const unsigned flat = id.flat();
    if (regs_[flat].known && !regFacts_[flat].empty())
        noteFact(regFacts_[flat]);
    return regs_[flat];
}

void
AbsMachine::noteFact(const std::string &fact) const
{
    for (const std::string &f : factsUsed_) {
        if (f == fact)
            return;
    }
    factsUsed_.push_back(fact);
}

void
AbsMachine::write(RegId id, AbsVal v)
{
    if (id.isValid()) {
        regs_[id.flat()] = v;
        // The entry fact no longer describes a redefined register.
        regFacts_[id.flat()].clear();
    }
}

AbsVal
AbsMachine::effectiveAddr(const Inst &inst) const
{
    const unsigned esize = inst.elemSize();
    std::int64_t index = inst.mem.disp;
    if (inst.mem.index.isValid()) {
        const AbsVal iv = read(inst.mem.index);
        if (!iv.known)
            return AbsVal::top();
        index += static_cast<SWord>(iv.value);
    }
    return AbsVal::of(
        inst.mem.base + static_cast<Addr>(index * esize));
}

Taken
AbsMachine::condHolds(Cond cond) const
{
    if (cond == Cond::AL)
        return Taken::Yes;
    if (!flagsKnown_)
        return Taken::Unknown;
    bool holds = false;
    switch (cond) {
      case Cond::AL: holds = true; break;
      case Cond::EQ: holds = cmpState_ == 0; break;
      case Cond::NE: holds = cmpState_ != 0; break;
      case Cond::LT: holds = cmpState_ < 0; break;
      case Cond::LE: holds = cmpState_ <= 0; break;
      case Cond::GT: holds = cmpState_ > 0; break;
      case Cond::GE: holds = cmpState_ >= 0; break;
    }
    return holds ? Taken::Yes : Taken::No;
}

AbsRetire
AbsMachine::step(const Inst &inst, int index, Taken &taken)
{
    const OpInfo &info = inst.info();

    AbsRetire ri;
    ri.inst = &inst;
    ri.index = index;
    taken = Taken::No;

    const Taken executed = condHolds(inst.cond);
    // Conditional register writes: an undecidable condition means the
    // destination may or may not change, so it drops to Top.
    auto condWrite = [&](RegId dst, AbsVal v) {
        if (executed == Taken::Yes)
            write(dst, v);
        else if (executed == Taken::Unknown)
            write(dst, AbsVal::top());
    };

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        return ri;

      case Opcode::Mov: {
        const AbsVal value = inst.hasImm
                                 ? AbsVal::of(static_cast<Word>(inst.imm))
                                 : read(inst.src1);
        condWrite(inst.dst, value);
        ri.value = value;
        return ri;
      }

      case Opcode::Cmp: {
        const AbsVal a = read(inst.src1);
        const AbsVal b = inst.hasImm
                             ? AbsVal::of(static_cast<Word>(inst.imm))
                             : read(inst.src2);
        if (executed != Taken::No) {
            lastCmpIndex_ = index;
            if (executed == Taken::Yes && a.known && b.known) {
                cmpState_ =
                    evalCompare(a.value, b.value, inst.src1.isFloat());
                flagsKnown_ = true;
            } else {
                flagsKnown_ = false;
            }
        }
        return ri;
      }

      case Opcode::B:
        taken = executed;
        ri.branchTaken = executed == Taken::Yes;
        return ri;

      default:
        break;
    }

    if (info.isLoad) {
        const AbsVal ea = effectiveAddr(inst);
        AbsVal value = AbsVal::top();
        if (ea.known && prog_.isReadOnly(ea.value) &&
            !clobbered(ea.value, info.memElemSize)) {
            Word raw = 0;
            if (prog_.readInitialElem(ea.value, info.memElemSize,
                                      info.memSigned, raw))
                value = AbsVal::of(raw);
        }
        // Writable memory is normally Top, but the whole-program
        // range analysis may have pinned the cell's entry contents;
        // the clobbered() guard keeps the region's own stores honest.
        if (!value.known && ea.known && facts_ &&
            !clobbered(ea.value, info.memElemSize)) {
            Word raw = 0;
            std::string fact;
            if (facts_->readCell(ea.value, info.memElemSize,
                                 info.memSigned, raw, fact)) {
                value = AbsVal::of(raw);
                noteFact(fact);
            }
        }
        condWrite(inst.dst, value);
        ri.value = value;
        ri.memAddr = ea;
        return ri;
    }

    if (info.isStore) {
        const AbsVal ea = effectiveAddr(inst);
        if (executed != Taken::No) {
            if (ea.known)
                stores_.push_back(
                    StoreRange{ea.value, info.memElemSize});
            else
                unknownStore_ = true;
        }
        ri.value = read(inst.src1);
        ri.memAddr = ea;
        return ri;
    }

    if (info.isDataProc) {
        const AbsVal a = read(inst.src1);
        const AbsVal b = inst.hasImm
                             ? AbsVal::of(static_cast<Word>(inst.imm))
                             : read(inst.src2);
        AbsVal value = AbsVal::top();
        if (a.known && b.known) {
            value = AbsVal::of(evalScalarOp(inst.op, a.value, b.value,
                                            inst.dst.isFloat()));
        }
        condWrite(inst.dst, value);
        ri.value = value;
        return ri;
    }

    // Vector/unknown opcodes have no scalar dataflow effect; the rule
    // automaton rejects them before their value could matter.
    return ri;
}

bool
AbsMachine::clobbered(Addr addr, unsigned size) const
{
    if (unknownStore_)
        return true;
    for (const StoreRange &s : stores_) {
        if (addr < s.addr + s.size && s.addr < addr + size)
            return true;
    }
    return false;
}

} // namespace liquid
