/**
 * @file
 * Static memory-dependence and stride analysis over one outlined
 * region ("depcheck").
 *
 * The dynamic translator's only memory-dependence defence is the
 * firstEa-interval test at loop finalization, which (a) never sees
 * gather/scatter accesses (Rule 3/5 creates no BuildNote), (b) ignores
 * store-store pairs, (c) ignores stores *below* a load stream, and
 * (d) aborts overlapping streams even when the carried distance makes
 * SIMD execution safe. depcheck closes that gap statically: it walks
 * the region once with the verifier's AbsMachine, records every
 * load/store executed inside a natural loop as a concrete
 * per-iteration address trace, classifies each access as
 * `base + k*iv + c` (unit-stride, strided, gather/scatter) and then
 * decides, per candidate SIMD width N, whether vector execution
 * preserves scalar memory semantics.
 *
 * The exactness argument: the accelerator executes the loop body in
 * textual order, one microcode instruction over all N lanes at a time
 * (vld reads lanes ascending, vst writes lanes ascending — see
 * Core::executeVector). A loop-carried dependence between iterations
 * i and j therefore breaks if and only if both fall into the same
 * vector group (⌊i/N⌋ == ⌊j/N⌋) and the textual order of the two
 * accesses is opposite to their iteration order. In particular a
 * carried distance d ≥ N can never break: the iterations land in
 * different groups, which execute in order.
 */

#ifndef LIQUID_VERIFIER_DEPCHECK_HH
#define LIQUID_VERIFIER_DEPCHECK_HH

#include <array>
#include <string>
#include <vector>

#include "asm/program.hh"

namespace liquid
{

class RegionCfg;

/** Address-progression class of one static load/store in a loop. */
enum class AccessClass : std::uint8_t
{
    UnitStride,    ///< ea(i) = base + i*elemSize
    Strided,       ///< ea(i) = base + i*stride, stride != elemSize
    GatherScatter, ///< concrete per-iteration addresses, non-affine
    Unknown,       ///< some address was runtime-dependent
};

const char *accessClassName(AccessClass cls);

/** One static memory access inside an analyzed loop. */
struct MemAccess
{
    int instIndex = -1;
    bool isStore = false;
    AccessClass cls = AccessClass::Unknown;
    unsigned elemSize = 0;
    Addr firstEa = 0;           ///< first executed effective address
    std::int64_t strideBytes = 0;  ///< per-iteration delta (affine only)
    unsigned events = 0;        ///< dynamic executions recorded
    Addr minEa = 0;             ///< lowest byte touched
    Addr maxEnd = 0;            ///< one past the highest byte touched
    std::string arrayName;      ///< data symbol blamed for firstEa
};

/** A loop-carried pair of accesses touching a common byte. */
struct DepPair
{
    int storeIndex = -1;   ///< instruction index of the store
    int otherIndex = -1;   ///< the load (flow/anti) or store (output)
    bool otherIsStore = false;
    unsigned distance = 0; ///< iteration distance |i - j| of the pair
    Addr addr = 0;         ///< a concrete overlapping byte address
    /**
     * True when the textual order of the two accesses is opposite to
     * their iteration order, so any width grouping both iterations
     * executes them in the wrong order.
     */
    bool orderFlips = false;
};

/**
 * Machine-readable cause of an `Unknown` verdict (the free-form `why`
 * string stays alongside as the human description). Stable codes are
 * surfaced in liquid-verify-v2 JSON; extend at the end only.
 */
enum class DepReason : std::uint8_t
{
    None,              ///< verdict is not Unknown
    StepBudget,        ///< abstract walk exceeded stepBudget
    LeavesText,        ///< control flow left the program text
    NestedCall,        ///< bl inside the region
    RuntimeBranch,     ///< branch depends on runtime data
    PredicatedAccess,  ///< conditional load/store inside a loop
    RuntimeAddress,    ///< effective address depends on runtime data
    PairBudgetAtWidth, ///< pair-test budget died at this width
    PairBudgetBefore,  ///< pair-test budget died at a narrower width
    OutsideLadder,     ///< width not in the analyzed ladder
};

/** Stable JSON code for @p reason (camelCase, e.g. "stepBudget"). */
const char *depReasonName(DepReason reason);

/** Per-width safety decision. */
struct WidthVerdict
{
    enum class Kind : std::uint8_t
    {
        Safe,     ///< SIMD at this width preserves scalar semantics
        Unsafe,   ///< a concrete dependence breaks; see pair
        Unknown,  ///< not statically resolvable; see why
    };
    Kind kind = Kind::Unknown;
    DepPair pair;     ///< valid when Unsafe
    std::string why;  ///< human description (Unknown / range proofs)
    DepReason reason = DepReason::None;  ///< machine code for Unknown
    /** True when the range analysis discharged this width to Safe. */
    bool viaRange = false;
};

class EntryFacts;

/** Analysis limits. */
struct DepcheckOptions
{
    /** Abstract walk budget (instructions executed). */
    unsigned long stepBudget = 200000;
    /**
     * Total pair-overlap tests across all candidate widths, spent in
     * ascending width order: wider groupings cost more tests, so when
     * the budget runs dry the narrow widths stay resolved and only the
     * wide ones degrade to Unknown.
     */
    unsigned long pairBudget = 1ul << 24;
    /**
     * Proven region-entry facts (registers / memory cells) from the
     * whole-program range analysis; the walk's AbsMachine resolves
     * values through them instead of degrading to runtime-dependent.
     */
    const EntryFacts *facts = nullptr;
};

/** The complete dependence analysis of one region. */
struct DepcheckResult
{
    /** Candidate widths, matching the translator's fallback ladder. */
    static constexpr std::array<unsigned, 4> widths{2, 4, 8, 16};

    bool analyzed = false;   ///< region had loops and the walk ran
    bool resolved = false;   ///< walk completed with concrete addresses
    std::string unresolvedWhy;
    DepReason unresolvedReason = DepReason::None;
    int unresolvedIndex = -1;
    /** External range facts the walk consumed (for diagnostics). */
    std::vector<std::string> factsUsed;

    unsigned loopsAnalyzed = 0;
    unsigned eventCount = 0;      ///< dynamic load/store executions
    std::vector<MemAccess> accesses;

    unsigned carriedPairs = 0;    ///< overlapping cross-iteration pairs
    /** Min iteration distance over carried pairs; 0 when none found. */
    unsigned minDistance = 0;

    std::array<WidthVerdict, widths.size()> byWidth;

    const WidthVerdict &verdictAt(unsigned width) const;
    bool safeAt(unsigned width) const;

    /**
     * One-line machine-written proof for an Ok verdict at @p width:
     * access classes plus the distance/disjointness argument.
     */
    std::string proofSummary(unsigned width) const;
};

/**
 * Analyze the region entered at @p entry_index. @p cfg must be the
 * region's CFG (for the loop ranges). Never throws; failures surface
 * as resolved == false / Unknown width verdicts.
 */
DepcheckResult analyzeDeps(const Program &prog, int entry_index,
                           const RegionCfg &cfg,
                           const DepcheckOptions &opts = {});

/**
 * One dynamic load/store execution inside a loop, exported for the
 * width-polymorphic verifier (liquid-poly). Identical to the trace
 * analyzeDeps scans internally: iteration-ordered per loop, so group
 * runs at any width are contiguous.
 */
struct DepEvent
{
    int loop = -1;      ///< loop id (dense, per region)
    unsigned iter = 0;  ///< 0-based iteration of that loop
    int pos = -1;       ///< instruction index = textual position
    Addr ea = 0;
    unsigned size = 0;
    bool isStore = false;
};

/**
 * The width-independent half of the dependence analysis: the walk and
 * the access classification, with the per-width group scan left to the
 * caller. liquid-poly replays the same scan analyzeDeps runs — same
 * event order, same overlap and order-flip predicates — at a symbolic
 * width, so one trace serves every N.
 */
struct PolyDeps
{
    bool analyzed = false;  ///< region had loops and the walk ran
    bool resolved = false;  ///< walk completed with concrete addresses
    std::string unresolvedWhy;
    DepReason unresolvedReason = DepReason::None;
    int unresolvedIndex = -1;
    std::vector<std::string> factsUsed;

    unsigned loopsAnalyzed = 0;
    std::vector<DepEvent> events;  ///< walk order (= scan order)
    std::vector<MemAccess> accesses;
    unsigned maxIter = 0;  ///< largest 0-based iteration observed
};

/**
 * Run the walk + classification of analyzeDeps and return the raw
 * trace instead of per-width verdicts. Same AbsMachine, same budgets,
 * same failure cases (surfacing as resolved == false).
 */
PolyDeps analyzePolyDeps(const Program &prog, int entry_index,
                         const RegionCfg &cfg,
                         const DepcheckOptions &opts = {});

} // namespace liquid

#endif // LIQUID_VERIFIER_DEPCHECK_HH
