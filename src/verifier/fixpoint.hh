/**
 * @file
 * Generic round-robin dataflow fixpoint engine over a RegionCfg.
 *
 * Both liveness (backward, set union) and the value-range analysis
 * (forward, interval x congruence with widening) iterate per-block
 * transfer functions to a fixpoint; this header hoists the shared
 * worklist so every analysis states only its lattice and transfer.
 *
 * A problem `P` is a duck-typed value with:
 *
 *   using State = ...;                 // lattice element
 *   static constexpr bool forward;     // sweep direction
 *   State initial(std::size_t b);      // join identity / first guess
 *   bool  isBoundary(std::size_t b);   // boundary(b) contributes here
 *   State boundary(std::size_t b);     // boundary contribution
 *   bool  pinBoundary();               // boundary REPLACES edge joins
 *   State noEdges(std::size_t b);      // gather when no in-edges
 *   void  join(State &acc, const State &other);
 *   void  edge(std::size_t from, std::size_t to, State &s);
 *                                      // refine a neighbor's state as
 *                                      // it crosses edge from->to
 *   State transfer(std::size_t b, const State &gathered);
 *   bool  equal(const State &a, const State &b);
 *   bool  widenAt(std::size_t b);      // widening point (loop head)
 *   void  widen(State &next, const State &prev); // next = prev nabla next
 *
 * The engine gathers each block's input from its CFG neighbors
 * (predecessors when forward, successors when backward), applies the
 * transfer, and sweeps round-robin until nothing changes. Widening
 * kicks in at designated blocks after `widenDelay` visits; after
 * convergence, `narrowSweeps` extra sweeps recompute without widening
 * (a descending iteration that stays above the least fixpoint).
 */

#ifndef LIQUID_VERIFIER_FIXPOINT_HH
#define LIQUID_VERIFIER_FIXPOINT_HH

#include <cstddef>
#include <vector>

#include "verifier/cfg.hh"

namespace liquid
{

/** Engine knobs; defaults suit finite-height lattices (no widening). */
struct FixParams
{
    /** Visits of a widening block before widening engages. */
    unsigned widenDelay = 2;
    /** Decreasing recompute sweeps after the widened fixpoint. */
    unsigned narrowSweeps = 0;
    /** Sweep cap; 0 picks a generous default from the block count. */
    unsigned maxSweeps = 0;
};

/**
 * Solved per-block frames. `in` is the gathered input (liveOut for a
 * backward problem), `out` the transferred result (liveIn backward).
 */
template <typename State>
struct FixSolution
{
    std::vector<State> in;
    std::vector<State> out;
    /** False when maxSweeps was hit; callers must degrade soundly. */
    bool converged = false;
    unsigned sweeps = 0;
};

template <typename P>
FixSolution<typename P::State>
fixSolve(const RegionCfg &cfg, P &p, const FixParams &params = {})
{
    using State = typename P::State;
    const auto &blocks = cfg.blocks();
    const std::size_t n = blocks.size();

    FixSolution<State> sol;
    sol.in.reserve(n);
    sol.out.reserve(n);
    for (std::size_t b = 0; b < n; ++b) {
        sol.in.push_back(p.initial(b));
        sol.out.push_back(p.initial(b));
    }
    if (n == 0) {
        sol.converged = true;
        return sol;
    }

    const unsigned max_sweeps =
        params.maxSweeps ? params.maxSweeps
                         : 16 + 72 * static_cast<unsigned>(n);
    std::vector<unsigned> visits(n, 0);

    auto gather = [&](std::size_t b) {
        const BasicBlock &bb = blocks[b];
        const bool at_boundary = p.isBoundary(b);
        State acc = at_boundary ? p.boundary(b) : p.initial(b);
        if (at_boundary && p.pinBoundary())
            return acc;
        const auto &neighbors = P::forward ? bb.preds : bb.succs;
        if (neighbors.empty() && !at_boundary)
            return p.noEdges(b);
        for (const int nb : neighbors) {
            const auto nbi = static_cast<std::size_t>(nb);
            State s = sol.out[nbi];
            if (P::forward)
                p.edge(nbi, b, s);
            else
                p.edge(b, nbi, s);
            p.join(acc, s);
        }
        return acc;
    };

    auto sweep = [&](bool widening) {
        bool changed = false;
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t b = P::forward ? k : n - 1 - k;
            State in = gather(b);
            if (widening && p.widenAt(b) &&
                ++visits[b] > params.widenDelay)
                p.widen(in, sol.in[b]);
            State out = p.transfer(b, in);
            if (!p.equal(in, sol.in[b]) || !p.equal(out, sol.out[b])) {
                sol.in[b] = std::move(in);
                sol.out[b] = std::move(out);
                changed = true;
            }
        }
        return changed;
    };

    for (; sol.sweeps < max_sweeps; ++sol.sweeps) {
        if (!sweep(true)) {
            sol.converged = true;
            break;
        }
    }
    if (sol.converged) {
        for (unsigned s = 0; s < params.narrowSweeps; ++s) {
            ++sol.sweeps;
            if (!sweep(false))
                break;
        }
    }
    return sol;
}

} // namespace liquid

#endif // LIQUID_VERIFIER_FIXPOINT_HH
