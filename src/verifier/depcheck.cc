#include "verifier/depcheck.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "verifier/cfg.hh"
#include "verifier/dataflow.hh"

namespace liquid
{

namespace
{

/** One dynamic load/store execution inside a loop. */
struct MemEvent
{
    int loop;          ///< loop id (index into the walker's ranges)
    unsigned iter;     ///< 0-based iteration of that loop
    int pos;           ///< instruction index = textual position
    Addr ea;
    unsigned size;
    bool isStore;
};

/** Instruction range [first, last] of one natural loop. */
struct LoopRange
{
    int first;
    int last;  ///< the backedge instruction
};

/** Innermost loop whose range contains @p index; -1 if none. */
int
loopOf(const std::vector<LoopRange> &loops, int index)
{
    int best = -1;
    int bestSpan = 0;
    for (std::size_t i = 0; i < loops.size(); ++i) {
        const LoopRange &l = loops[i];
        if (index < l.first || index > l.last)
            continue;
        const int span = l.last - l.first;
        if (best < 0 || span < bestSpan) {
            best = static_cast<int>(i);
            bestSpan = span;
        }
    }
    return best;
}

/** Walk failure: names the runtime condition, like the rule mirror. */
struct WalkStop
{
    std::string why;
    int index;
    DepReason reason;
};

/**
 * Execute the region abstractly and collect the memory-event trace.
 * Throws WalkStop when an address, predicate or branch is
 * runtime-dependent (the cases the rule mirror reports as Warn, plus
 * predicated memory accesses, which the translator vectorizes
 * unconditionally and so are never provably order-safe).
 */
std::vector<MemEvent>
walkRegion(const Program &prog, int entry_index,
           const std::vector<LoopRange> &loops,
           const DepcheckOptions &opts, AbsMachine &machine)
{
    std::vector<MemEvent> events;
    std::vector<unsigned> iterOf(loops.size(), 0);

    const auto &code = prog.code();
    int pc = entry_index;
    unsigned long steps = 0;

    for (;;) {
        if (++steps > opts.stepBudget)
            throw WalkStop{"region exceeds the analysis step budget",
                           pc, DepReason::StepBudget};
        if (pc < 0 || pc >= static_cast<int>(code.size()))
            throw WalkStop{"control flow leaves the program text", pc,
                           DepReason::LeavesText};

        const Inst &inst = code[pc];
        if (inst.op == Opcode::Ret || inst.op == Opcode::Halt)
            break;
        if (inst.op == Opcode::Bl)
            throw WalkStop{"call inside the region", pc,
                           DepReason::NestedCall};

        Taken taken = Taken::No;
        const AbsRetire ri = machine.step(inst, pc, taken);
        if (inst.op == Opcode::B && taken == Taken::Unknown)
            throw WalkStop{"branch depends on runtime data", pc,
                           DepReason::RuntimeBranch};

        const OpInfo &info = inst.info();
        if (info.isLoad || info.isStore) {
            const int loop = loopOf(loops, pc);
            if (loop >= 0) {
                if (inst.cond != Cond::AL) {
                    throw WalkStop{
                        "predicated memory access inside a loop: the "
                        "translated microcode executes it on every "
                        "lane",
                        pc, DepReason::PredicatedAccess};
                }
                if (!ri.memAddr.known) {
                    throw WalkStop{
                        "memory address depends on runtime data", pc,
                        DepReason::RuntimeAddress};
                }
                events.push_back(MemEvent{
                    loop, iterOf[static_cast<std::size_t>(loop)], pc,
                    ri.memAddr.value, info.memElemSize, info.isStore});
            }
        }

        if (inst.op == Opcode::B && ri.branchTaken) {
            const int loop = loopOf(loops, pc);
            if (loop >= 0 && loops[static_cast<std::size_t>(loop)].last == pc)
                ++iterOf[static_cast<std::size_t>(loop)];
            pc = inst.target;
        } else {
            ++pc;
        }
    }
    return events;
}

/** Classify each static access from its per-iteration address trace. */
std::vector<MemAccess>
classifyAccesses(const Program &prog, const std::vector<MemEvent> &events)
{
    std::map<int, MemAccess> byInst;
    std::map<int, Addr> lastEa;
    std::map<int, bool> affine;
    std::map<int, unsigned> lastIter;

    for (const MemEvent &e : events) {
        auto it = byInst.find(e.pos);
        if (it == byInst.end()) {
            MemAccess a;
            a.instIndex = e.pos;
            a.isStore = e.isStore;
            a.elemSize = e.size;
            a.firstEa = e.ea;
            a.minEa = e.ea;
            a.maxEnd = e.ea + e.size;
            a.events = 1;
            a.arrayName = prog.symbolAt(e.ea);
            byInst.emplace(e.pos, std::move(a));
            lastEa[e.pos] = e.ea;
            lastIter[e.pos] = e.iter;
            affine[e.pos] = true;
            continue;
        }
        MemAccess &a = it->second;
        // Affine fit: a constant byte delta per iteration step. A
        // repeated iteration (nested execution) is never affine.
        const std::int64_t delta =
            static_cast<std::int64_t>(e.ea) -
            static_cast<std::int64_t>(lastEa[e.pos]);
        const unsigned dIter = e.iter - lastIter[e.pos];
        if (dIter == 0) {
            affine[e.pos] = false;
        } else if (a.events == 1) {
            a.strideBytes = delta / static_cast<std::int64_t>(dIter);
            if (a.strideBytes * dIter != delta)
                affine[e.pos] = false;
        } else if (delta != a.strideBytes *
                                static_cast<std::int64_t>(dIter)) {
            affine[e.pos] = false;
        }
        lastEa[e.pos] = e.ea;
        lastIter[e.pos] = e.iter;
        ++a.events;
        a.minEa = std::min(a.minEa, e.ea);
        a.maxEnd = std::max(a.maxEnd, e.ea + e.size);
    }

    std::vector<MemAccess> out;
    out.reserve(byInst.size());
    for (auto &[pos, a] : byInst) {
        if (!affine[pos]) {
            a.cls = AccessClass::GatherScatter;
            a.strideBytes = 0;
        } else if (a.events > 1 &&
                   a.strideBytes ==
                       static_cast<std::int64_t>(a.elemSize)) {
            a.cls = AccessClass::UnitStride;
        } else {
            a.cls = AccessClass::Strided;
        }
        out.push_back(a);
    }
    return out;
}

bool
overlaps(const MemEvent &a, const MemEvent &b)
{
    return a.ea < b.ea + b.size && b.ea < a.ea + a.size;
}

} // namespace

const char *
accessClassName(AccessClass cls)
{
    switch (cls) {
      case AccessClass::UnitStride: return "unit-stride";
      case AccessClass::Strided: return "strided";
      case AccessClass::GatherScatter: return "gather/scatter";
      case AccessClass::Unknown: return "unknown";
    }
    return "unknown";
}

const char *
depReasonName(DepReason reason)
{
    switch (reason) {
      case DepReason::None: return "none";
      case DepReason::StepBudget: return "stepBudget";
      case DepReason::LeavesText: return "leavesText";
      case DepReason::NestedCall: return "nestedCall";
      case DepReason::RuntimeBranch: return "runtimeBranch";
      case DepReason::PredicatedAccess: return "predicatedAccess";
      case DepReason::RuntimeAddress: return "runtimeAddress";
      case DepReason::PairBudgetAtWidth: return "pairBudgetAtWidth";
      case DepReason::PairBudgetBefore: return "pairBudgetBefore";
      case DepReason::OutsideLadder: return "outsideLadder";
    }
    return "none";
}

const WidthVerdict &
DepcheckResult::verdictAt(unsigned width) const
{
    for (std::size_t i = 0; i < widths.size(); ++i) {
        if (widths[i] == width)
            return byWidth[i];
    }
    // Widths outside the ladder are never proven.
    static const WidthVerdict unknown{
        WidthVerdict::Kind::Unknown, DepPair{},
        "width outside the analyzed ladder",
        DepReason::OutsideLadder, false};
    return unknown;
}

bool
DepcheckResult::safeAt(unsigned width) const
{
    return verdictAt(width).kind == WidthVerdict::Kind::Safe;
}

std::string
DepcheckResult::proofSummary(unsigned width) const
{
    unsigned unit = 0, strided = 0, gather = 0;
    for (const MemAccess &a : accesses) {
        switch (a.cls) {
          case AccessClass::UnitStride: ++unit; break;
          case AccessClass::Strided: ++strided; break;
          default: ++gather; break;
        }
    }
    std::ostringstream os;
    os << "dependence-safe at width " << width << ": " << unit
       << " unit-stride, " << strided << " strided, " << gather
       << " gather/scatter access(es); ";
    if (carriedPairs == 0) {
        os << "no loop-carried overlap within any " << width
           << "-iteration group";
    } else {
        os << carriedPairs << " carried overlap pair(s), min distance "
           << minDistance << ", none order-breaking at this width";
    }
    return os.str();
}

DepcheckResult
analyzeDeps(const Program &prog, int entry_index, const RegionCfg &cfg,
            const DepcheckOptions &opts)
{
    DepcheckResult result;
    if (cfg.loops().empty()) {
        // No loops: every access executes once, in textual order, in
        // both scalar and microcode form.
        result.resolved = true;
        for (auto &v : result.byWidth)
            v.kind = WidthVerdict::Kind::Safe;
        return result;
    }
    result.analyzed = true;

    std::vector<LoopRange> loops;
    loops.reserve(cfg.loops().size());
    for (const CfgLoop &l : cfg.loops()) {
        loops.push_back(LoopRange{
            cfg.blocks()[static_cast<std::size_t>(l.headBlock)].first,
            l.backedgeIndex});
    }
    result.loopsAnalyzed = static_cast<unsigned>(loops.size());

    std::vector<MemEvent> events;
    AbsMachine machine(prog, opts.facts);
    try {
        events = walkRegion(prog, entry_index, loops, opts, machine);
    } catch (const WalkStop &stop) {
        result.resolved = false;
        result.unresolvedWhy = stop.why;
        result.unresolvedReason = stop.reason;
        result.unresolvedIndex = stop.index;
        result.factsUsed = machine.factsUsed();
        for (auto &v : result.byWidth) {
            v.kind = WidthVerdict::Kind::Unknown;
            v.why = stop.why;
            v.reason = stop.reason;
        }
        return result;
    }
    result.resolved = true;
    result.factsUsed = machine.factsUsed();
    result.eventCount = static_cast<unsigned>(events.size());
    result.accesses = classifyAccesses(prog, events);

    // Bucket events per (loop, group) and test store-vs-access pairs
    // inside each group. Widths ascend so a drained budget costs the
    // wide verdicts first.
    std::vector<std::vector<const MemEvent *>> perLoop(loops.size());
    for (const MemEvent &e : events)
        perLoop[static_cast<std::size_t>(e.loop)].push_back(&e);

    unsigned long spent = 0;
    unsigned minDist = 0;
    bool budgetDry = false;

    for (std::size_t wi = 0; wi < DepcheckResult::widths.size(); ++wi) {
        const unsigned width = DepcheckResult::widths[wi];
        WidthVerdict &verdict = result.byWidth[wi];
        if (budgetDry) {
            verdict.kind = WidthVerdict::Kind::Unknown;
            verdict.why = "dependence pair-test budget exhausted "
                          "before this width";
            verdict.reason = DepReason::PairBudgetBefore;
            continue;
        }
        verdict.kind = WidthVerdict::Kind::Safe;
        unsigned pairsThisWidth = 0;

        for (std::size_t li = 0;
             li < perLoop.size() && !budgetDry &&
             verdict.kind == WidthVerdict::Kind::Safe;
             ++li) {
            // Events arrive iteration-ordered, so group runs are
            // contiguous.
            const auto &evs = perLoop[li];
            std::size_t gBegin = 0;
            while (gBegin < evs.size() && !budgetDry &&
                   verdict.kind == WidthVerdict::Kind::Safe) {
                const unsigned group = evs[gBegin]->iter / width;
                std::size_t gEnd = gBegin;
                while (gEnd < evs.size() &&
                       evs[gEnd]->iter / width == group)
                    ++gEnd;

                for (std::size_t i = gBegin;
                     i < gEnd && !budgetDry &&
                     verdict.kind == WidthVerdict::Kind::Safe;
                     ++i) {
                    const MemEvent &a = *evs[i];
                    if (!a.isStore)
                        continue;
                    for (std::size_t j = gBegin; j < gEnd; ++j) {
                        if (i == j)
                            continue;
                        const MemEvent &b = *evs[j];
                        if (a.isStore && b.isStore && j < i)
                            continue;  // store pairs tested once
                        if (++spent > opts.pairBudget) {
                            budgetDry = true;
                            verdict.kind =
                                WidthVerdict::Kind::Unknown;
                            verdict.why =
                                "dependence pair-test budget "
                                "exhausted at this width";
                            verdict.reason =
                                DepReason::PairBudgetAtWidth;
                            break;
                        }
                        if (!overlaps(a, b) || a.iter == b.iter)
                            continue;
                        const unsigned dist = a.iter > b.iter
                                                  ? a.iter - b.iter
                                                  : b.iter - a.iter;
                        if (minDist == 0 || dist < minDist)
                            minDist = dist;
                        ++pairsThisWidth;
                        // Vector groups run the body textually, so
                        // the pair breaks iff textual order opposes
                        // iteration order.
                        const bool flips =
                            (a.iter < b.iter && a.pos > b.pos) ||
                            (b.iter < a.iter && b.pos > a.pos);
                        if (!flips)
                            continue;
                        DepPair pair;
                        pair.storeIndex = a.pos;
                        pair.otherIndex = b.pos;
                        pair.otherIsStore = b.isStore;
                        pair.distance = dist;
                        pair.addr = std::max(a.ea, b.ea);
                        pair.orderFlips = true;
                        verdict.kind = WidthVerdict::Kind::Unsafe;
                        verdict.pair = pair;
                        break;
                    }
                }
                gBegin = gEnd;
            }
        }
        // Groups at width 2N contain the groups at width N, so a
        // completed wider scan sees a superset of the narrower one's
        // pairs: the running max is "pairs within the widest resolved
        // window", the number the Ok proof quotes.
        result.carriedPairs =
            std::max(result.carriedPairs, pairsThisWidth);
    }
    result.minDistance = minDist;
    return result;
}

PolyDeps
analyzePolyDeps(const Program &prog, int entry_index,
                const RegionCfg &cfg, const DepcheckOptions &opts)
{
    PolyDeps result;
    if (cfg.loops().empty()) {
        // No loops: no carried dependences at any width.
        result.resolved = true;
        return result;
    }
    result.analyzed = true;

    std::vector<LoopRange> loops;
    loops.reserve(cfg.loops().size());
    for (const CfgLoop &l : cfg.loops()) {
        loops.push_back(LoopRange{
            cfg.blocks()[static_cast<std::size_t>(l.headBlock)].first,
            l.backedgeIndex});
    }
    result.loopsAnalyzed = static_cast<unsigned>(loops.size());

    std::vector<MemEvent> events;
    AbsMachine machine(prog, opts.facts);
    try {
        events = walkRegion(prog, entry_index, loops, opts, machine);
    } catch (const WalkStop &stop) {
        result.resolved = false;
        result.unresolvedWhy = stop.why;
        result.unresolvedReason = stop.reason;
        result.unresolvedIndex = stop.index;
        result.factsUsed = machine.factsUsed();
        return result;
    }
    result.resolved = true;
    result.factsUsed = machine.factsUsed();
    result.accesses = classifyAccesses(prog, events);
    result.events.reserve(events.size());
    for (const MemEvent &e : events) {
        result.events.push_back(DepEvent{e.loop, e.iter, e.pos, e.ea,
                                         e.size, e.isStore});
        result.maxIter = std::max(result.maxIter, e.iter);
    }
    return result;
}

} // namespace liquid
