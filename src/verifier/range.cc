#include "verifier/range.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "cpu/exec.hh"
#include "verifier/cfg.hh"
#include "verifier/fixpoint.hh"

namespace liquid
{

namespace
{

using I128 = __int128;

std::int64_t
satToI64(I128 v)
{
    if (v > INT64_MAX)
        return INT64_MAX;
    if (v < INT64_MIN)
        return INT64_MIN;
    return static_cast<std::int64_t>(v);
}

/** Any signed-reinterpreted 32-bit register value lies here. */
const Interval top32{INT32_MIN, INT32_MAX};

/** Any 32-bit effective address lies here. */
const Interval addrTop{0, static_cast<std::int64_t>(UINT32_MAX)};

std::uint64_t
gcd64(std::uint64_t a, std::uint64_t b)
{
    while (b != 0) {
        const std::uint64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

/** Largest power-of-two divisor of @p v (v == 0 maps to 2^31). */
std::uint64_t
pow2Part(std::uint64_t v)
{
    if (v == 0)
        return 1ull << 31;
    std::uint64_t p = v & (~v + 1);
    if (p > (1ull << 31))
        p = 1ull << 31;
    return p;
}

std::string
boundStr(std::int64_t v)
{
    if (v == INT64_MIN)
        return "-inf";
    if (v == INT64_MAX)
        return "+inf";
    return std::to_string(v);
}

} // namespace

// ---- Interval --------------------------------------------------------------

Interval
Interval::join(const Interval &o) const
{
    if (empty())
        return o;
    if (o.empty())
        return *this;
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

Interval
Interval::meet(const Interval &o) const
{
    if (empty() || o.empty())
        return bottom();
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
}

Interval
Interval::widen(const Interval &next) const
{
    if (empty())
        return next;
    if (next.empty())
        return *this;
    return {next.lo < lo ? INT64_MIN : lo,
            next.hi > hi ? INT64_MAX : hi};
}

Interval
Interval::narrow(const Interval &next) const
{
    if (empty() || next.empty())
        return next;
    return {lo == INT64_MIN ? next.lo : lo,
            hi == INT64_MAX ? next.hi : hi};
}

Interval
Interval::add(const Interval &o) const
{
    if (empty() || o.empty())
        return bottom();
    return {satToI64(static_cast<I128>(lo) + o.lo),
            satToI64(static_cast<I128>(hi) + o.hi)};
}

Interval
Interval::sub(const Interval &o) const
{
    if (empty() || o.empty())
        return bottom();
    return {satToI64(static_cast<I128>(lo) - o.hi),
            satToI64(static_cast<I128>(hi) - o.lo)};
}

Interval
Interval::neg() const
{
    if (empty())
        return bottom();
    return {satToI64(-static_cast<I128>(hi)),
            satToI64(-static_cast<I128>(lo))};
}

Interval
Interval::mul(const Interval &o) const
{
    if (empty() || o.empty())
        return bottom();
    const I128 p[4] = {static_cast<I128>(lo) * o.lo,
                       static_cast<I128>(lo) * o.hi,
                       static_cast<I128>(hi) * o.lo,
                       static_cast<I128>(hi) * o.hi};
    I128 mn = p[0], mx = p[0];
    for (int i = 1; i < 4; ++i) {
        mn = std::min(mn, p[i]);
        mx = std::max(mx, p[i]);
    }
    return {satToI64(mn), satToI64(mx)};
}

std::string
Interval::str() const
{
    if (empty())
        return "[]";
    if (singleton())
        return "[" + std::to_string(lo) + "]";
    return "[" + boundStr(lo) + "," + boundStr(hi) + "]";
}

// ---- Congruence ------------------------------------------------------------

Congruence
Congruence::make(std::uint64_t mod, std::int64_t rem)
{
    if (mod == 0)
        return {0, rem};
    if (mod == 1 || mod > static_cast<std::uint64_t>(INT64_MAX))
        return top();
    const std::int64_t m = static_cast<std::int64_t>(mod);
    std::int64_t r = rem % m;
    if (r < 0)
        r += m;
    return {mod, r};
}

bool
Congruence::contains(std::int64_t v) const
{
    if (isTop())
        return true;
    if (isConst())
        return v == rem;
    const I128 d = static_cast<I128>(v) - rem;
    return d % static_cast<I128>(mod) == 0;
}

Congruence
Congruence::join(const Congruence &o) const
{
    if (isTop() || o.isTop())
        return top();
    const I128 diff = static_cast<I128>(rem) - o.rem;
    const std::uint64_t ad =
        diff < 0 ? static_cast<std::uint64_t>(-diff)
                 : static_cast<std::uint64_t>(diff);
    const std::uint64_t g = gcd64(gcd64(mod, o.mod), ad);
    if (g == 0)
        return {0, rem};  // both the same constant
    return make(g, rem);
}

Congruence
Congruence::meet(const Congruence &o) const
{
    // Over-approximate: any superset of the intersection is legal, and
    // each operand contains it; keep the stronger operand.
    if (isTop())
        return o;
    if (o.isTop())
        return *this;
    if (isConst())
        return *this;
    if (o.isConst())
        return o;
    return mod >= o.mod ? *this : o;
}

Congruence
Congruence::add(const Congruence &o) const
{
    if (isTop() || o.isTop())
        return top();
    const I128 s = static_cast<I128>(rem) + o.rem;
    const std::uint64_t g = gcd64(mod, o.mod);
    if (g == 0)
        return s == satToI64(s) ? of(static_cast<std::int64_t>(s))
                                : top();
    const I128 m = static_cast<I128>(g);
    return make(g, static_cast<std::int64_t>(((s % m) + m) % m));
}

Congruence
Congruence::sub(const Congruence &o) const
{
    return add(o.neg());
}

Congruence
Congruence::neg() const
{
    if (isTop())
        return top();
    if (isConst())
        return rem == INT64_MIN ? top() : of(-rem);
    return make(mod, -rem);
}

Congruence
Congruence::mul(const Congruence &o) const
{
    if (isTop() || o.isTop())
        return top();
    if (isConst() && o.isConst()) {
        const I128 p = static_cast<I128>(rem) * o.rem;
        return p == satToI64(p) ? of(static_cast<std::int64_t>(p))
                                : top();
    }
    // (m1 Z + r1)(m2 Z + r2) == gcd(m1 m2, m1 r2, m2 r1) Z + r1 r2.
    const I128 mm = static_cast<I128>(mod) * o.mod;
    const I128 mr1 = static_cast<I128>(mod) * (o.rem < 0 ? -o.rem : o.rem);
    const I128 mr2 = static_cast<I128>(o.mod) * (rem < 0 ? -rem : rem);
    const I128 rr = static_cast<I128>(rem) * o.rem;
    const I128 lim = static_cast<I128>(INT64_MAX);
    if (mm > lim || mr1 > lim || mr2 > lim || rr > lim || -rr > lim)
        return top();
    std::uint64_t g = gcd64(static_cast<std::uint64_t>(mm),
                            gcd64(static_cast<std::uint64_t>(mr1),
                                  static_cast<std::uint64_t>(mr2)));
    if (g == 0)
        return of(static_cast<std::int64_t>(rr));
    return make(g, static_cast<std::int64_t>(rr));
}

Congruence
Congruence::pow2() const
{
    if (isTop() || isConst())
        return *this;
    const std::uint64_t p = mod & (~mod + 1);
    const std::uint64_t capped =
        std::min<std::uint64_t>(p, 1ull << 31);
    if (capped <= 1)
        return top();
    return make(capped, rem);
}

std::string
Congruence::str() const
{
    if (isTop())
        return "T";
    if (isConst())
        return "=" + std::to_string(rem);
    return std::to_string(rem) + " mod " + std::to_string(mod);
}

// ---- RangeVal --------------------------------------------------------------

RangeVal
RangeVal::reduce() const
{
    if (iv.empty())
        return bottom();
    RangeVal r = *this;
    if (r.cg.isConst()) {
        r.iv = r.iv.meet(Interval::of(r.cg.rem));
        if (r.iv.empty())
            return bottom();
        return r;
    }
    if (r.cg.mod >= 2 && !r.iv.isTop()) {
        const I128 m = static_cast<I128>(r.cg.mod);
        // Tighten endpoints onto the residue class.
        I128 lo = r.iv.lo, hi = r.iv.hi;
        if (lo != INT64_MIN) {
            I128 d = (static_cast<I128>(r.cg.rem) - lo) % m;
            if (d < 0)
                d += m;
            lo += d;
        }
        if (hi != INT64_MAX) {
            I128 d = (hi - static_cast<I128>(r.cg.rem)) % m;
            if (d < 0)
                d += m;
            hi -= d;
        }
        if (lo > hi)
            return bottom();
        r.iv = Interval::make(satToI64(lo), satToI64(hi));
    }
    if (r.iv.singleton())
        return {r.iv, Congruence::of(r.iv.lo)};
    return r;
}

RangeVal
RangeVal::join(const RangeVal &o) const
{
    if (isBottom())
        return o;
    if (o.isBottom())
        return *this;
    return RangeVal{iv.join(o.iv), cg.join(o.cg)}.reduce();
}

RangeVal
RangeVal::meet(const RangeVal &o) const
{
    return RangeVal{iv.meet(o.iv), cg.meet(o.cg)}.reduce();
}

RangeVal
RangeVal::widen(const RangeVal &next) const
{
    if (isBottom())
        return next;
    if (next.isBottom())
        return *this;
    return RangeVal{iv.widen(next.iv), cg.join(next.cg)}.reduce();
}

RangeVal
RangeVal::narrow(const RangeVal &next) const
{
    if (isBottom() || next.isBottom())
        return next;
    return RangeVal{iv.narrow(next.iv), cg}.reduce();
}

std::string
RangeVal::str() const
{
    if (isBottom())
        return "_|_";
    if (cg.isTop())
        return iv.str();
    return iv.str() + " " + cg.str();
}

// ---- RangeState ------------------------------------------------------------

namespace
{

/**
 * Value range representable in @p size bytes under the register
 * convention (sign-extended 32-bit words). A full-word load fills the
 * register either way, so size >= 4 is always the signed 32-bit range;
 * the zero-extended form only exists for sub-word loads.
 */
Interval
widthRange(unsigned size, bool sign_extend)
{
    if (size >= 4)
        return top32;
    const std::int64_t span = 1ll << (8 * size - 1);
    if (sign_extend)
        return {-span, span - 1};
    return {0, 2 * span - 1};
}

/**
 * Truncate a stored value to the cell's width (signed interpretation
 * of the low @p size bytes).
 */
RangeVal
truncToCell(const RangeVal &v, unsigned size)
{
    if (size >= 4)
        return v;
    const Interval w = widthRange(size, true);
    std::int64_t c;
    if (v.isConst(c)) {
        const std::int64_t span = 1ll << (8 * size);
        std::int64_t t = c & (span - 1);
        if (t >= span / 2)
            t -= span;
        return RangeVal::of(t);
    }
    if (w.containsAll(v.iv))
        return v;
    return {w, Congruence::top()};
}

/** Convert a signed cell value into load semantics at @p size. */
RangeVal
cellToLoad(const RangeVal &v, unsigned size, bool sign_extend)
{
    if (size >= 4 || sign_extend)
        return v;
    // Zero extension: negative cell contents wrap up by 2^(8*size).
    const std::int64_t span = 1ll << (8 * size);
    if (v.iv.lo >= 0)
        return v;
    if (v.iv.hi < 0) {
        return RangeVal{v.iv.add(Interval::of(span)),
                        v.cg.add(Congruence::of(span))}
            .reduce();
    }
    return {widthRange(size, false), Congruence::top()};
}

} // namespace

RangeState
RangeState::everything()
{
    RangeState s;
    s.reachable = true;
    for (auto &r : s.regs)
        r = RangeVal{top32, Congruence::top()};
    s.memHavoc = true;
    return s;
}

RangeVal
RangeState::regAt(RegId id) const
{
    if (!id.isValid())
        return RangeVal{top32, Congruence::top()};
    return regs[id.flat()];
}

void
RangeState::setReg(RegId id, const RangeVal &v)
{
    if (!id.isValid())
        return;
    const int flat = static_cast<int>(id.flat());
    regs[flat] = v;
    if (flat == cmpLhsFlat)
        cmpLhsFlat = -1;
    if (flat == cmpRhsFlat)
        cmpRhsFlat = -1;
}

RangeVal
RangeState::load(const Program &prog, Addr addr, unsigned size,
                 bool sign_extend) const
{
    if (memHavoc)
        return {widthRange(size, sign_extend), Congruence::top()};
    // Any written cell overlapping [addr, addr+size)?
    auto it = cells.lower_bound(addr >= 8 ? addr - 8 : 0);
    for (; it != cells.end() && it->first < addr + size; ++it) {
        if (it->first + it->second.size <= addr)
            continue;
        if (it->first == addr && it->second.size == size)
            return cellToLoad(it->second.val, size, sign_extend);
        // Partial overlap with a differently-shaped write: unknown.
        return {widthRange(size, sign_extend), Congruence::top()};
    }
    // Never written on any path: the initial image's value.
    Word raw = 0;
    if (prog.readInitialElem(addr, size, sign_extend, raw)) {
        return RangeVal::of(
            static_cast<std::int64_t>(static_cast<SWord>(raw)));
    }
    return {widthRange(size, sign_extend), Congruence::top()};
}

void
RangeState::store(const Interval &addr, unsigned size, const RangeVal &v,
                  unsigned sabotage)
{
    if (!addr.singleton() || addr.lo < 0 ||
        addr.lo > static_cast<std::int64_t>(UINT32_MAX)) {
        if (!(sabotage & SabStoreNoHavoc))
            havocMemory();
        return;
    }
    const Addr a = static_cast<Addr>(addr.lo);
    // Poison differently-shaped overlapping cells (partial overwrite).
    auto it = cells.lower_bound(a >= 8 ? a - 8 : 0);
    for (; it != cells.end() && it->first < a + size; ++it) {
        if (it->first + it->second.size <= a)
            continue;
        if (it->first == a && it->second.size == size)
            continue;
        it->second.val =
            RangeVal{widthRange(it->second.size, true), Congruence::top()};
    }
    cells[a] = CellFact{size, truncToCell(v, size)};
}

void
RangeState::havocMemory()
{
    memHavoc = true;
    cells.clear();
}

bool
RangeState::operator==(const RangeState &o) const
{
    if (reachable != o.reachable)
        return false;
    if (!reachable)
        return true;
    if (memHavoc != o.memHavoc || cmpLhsFlat != o.cmpLhsFlat ||
        cmpRhsFlat != o.cmpRhsFlat)
        return false;
    if (!(cmpLhs == o.cmpLhs) || !(cmpRhs == o.cmpRhs))
        return false;
    if (regs != o.regs)
        return false;
    if (cells.size() != o.cells.size())
        return false;
    auto a = cells.begin();
    auto b = o.cells.begin();
    for (; a != cells.end(); ++a, ++b) {
        if (a->first != b->first || a->second.size != b->second.size ||
            !(a->second.val == b->second.val))
            return false;
    }
    return true;
}

void
RangeState::joinWith(const RangeState &o, const Program &prog,
                     unsigned sabotage)
{
    if (!o.reachable)
        return;
    if (!reachable || (sabotage & SabUnsoundJoin)) {
        *this = o;
        return;
    }
    for (std::size_t i = 0; i < regs.size(); ++i)
        regs[i] = regs[i].join(o.regs[i]);
    if (memHavoc || o.memHavoc) {
        havocMemory();
    } else {
        // A cell absent on one side still holds the image's value
        // there; join against it, or drop to width-top when the image
        // does not cover the address.
        auto imageVal = [&](const std::map<Addr, CellFact> &side,
                            Addr addr, unsigned size) -> RangeVal {
            for (auto it = side.lower_bound(addr >= 8 ? addr - 8 : 0);
                 it != side.end() && it->first < addr + size; ++it) {
                if (it->first + it->second.size > addr)
                    return {widthRange(size, true), Congruence::top()};
            }
            Word raw = 0;
            if (prog.readInitialElem(addr, size, true, raw)) {
                return RangeVal::of(
                    static_cast<std::int64_t>(static_cast<SWord>(raw)));
            }
            return {widthRange(size, true), Congruence::top()};
        };
        std::map<Addr, CellFact> merged = cells;
        for (const auto &[addr, cell] : o.cells) {
            auto here = merged.find(addr);
            if (here == merged.end()) {
                merged[addr] = CellFact{
                    cell.size, cell.val.join(imageVal(cells, addr,
                                                      cell.size))};
            } else if (here->second.size == cell.size) {
                here->second.val = here->second.val.join(cell.val);
            } else {
                here->second.val = RangeVal{
                    widthRange(here->second.size, true),
                    Congruence::top()};
            }
        }
        for (auto &[addr, cell] : merged) {
            if (o.cells.find(addr) == o.cells.end()) {
                cell.val =
                    cell.val.join(imageVal(o.cells, addr, cell.size));
            }
        }
        cells = std::move(merged);
    }
    if (cmpLhsFlat == o.cmpLhsFlat && cmpRhsFlat == o.cmpRhsFlat) {
        cmpLhs = cmpLhs.join(o.cmpLhs);
        cmpRhs = cmpRhs.join(o.cmpRhs);
    } else {
        cmpLhsFlat = cmpRhsFlat = -1;
        cmpLhs = cmpRhs = Interval::top();
    }
}

void
RangeState::widenWith(const RangeState &prev)
{
    if (!prev.reachable || !reachable)
        return;
    for (std::size_t i = 0; i < regs.size(); ++i)
        regs[i] = prev.regs[i].widen(regs[i]);
    for (auto &[addr, cell] : cells) {
        auto it = prev.cells.find(addr);
        if (it != prev.cells.end() && it->second.size == cell.size)
            cell.val = it->second.val.widen(cell.val);
    }
    if (cmpLhsFlat == prev.cmpLhsFlat && cmpRhsFlat == prev.cmpRhsFlat) {
        cmpLhs = prev.cmpLhs.widen(cmpLhs);
        cmpRhs = prev.cmpRhs.widen(cmpRhs);
    } else {
        cmpLhsFlat = cmpRhsFlat = -1;
        cmpLhs = cmpRhs = Interval::top();
    }
}

// ---- transfer functions ----------------------------------------------------

namespace
{

struct CalleeEnv
{
    const std::map<int, RangeState> *exits = nullptr;
    const std::map<int, FnSummary> *summaries = nullptr;
};

/** Clamp a computed value into the 32-bit signed value space. */
RangeVal
clampResult(const RangeVal &v, unsigned sabotage)
{
    if (v.isBottom())
        return v;
    if (top32.containsAll(v.iv))
        return v.reduce();
    if (sabotage & SabWrapClamp) {
        // Unsound: pretend overflow saturates instead of wrapping.
        return RangeVal{v.iv.meet(top32), v.cg}.reduce();
    }
    // 32-bit wraparound: the interval is gone, but power-of-two
    // congruences divide 2^32 and survive the wrap.
    return RangeVal{top32, v.cg.pow2()}.reduce();
}

RangeVal
evalRangeOp(Opcode op, const RangeVal &a, const RangeVal &b,
            bool use_float, unsigned sabotage)
{
    const RangeVal topv{top32, Congruence::top()};
    if (a.isBottom() || b.isBottom())
        return RangeVal::bottom();
    std::int64_t ca, cb;
    if (a.isConst(ca) && b.isConst(cb)) {
        const Word r = evalScalarOp(
            op, static_cast<Word>(static_cast<SWord>(ca)),
            static_cast<Word>(static_cast<SWord>(cb)), use_float);
        return RangeVal::of(
            static_cast<std::int64_t>(static_cast<SWord>(r)));
    }
    if (use_float)
        return topv;

    switch (op) {
      case Opcode::Add:
        return clampResult({a.iv.add(b.iv), a.cg.add(b.cg)}, sabotage);
      case Opcode::Sub:
        return clampResult({a.iv.sub(b.iv), a.cg.sub(b.cg)}, sabotage);
      case Opcode::Rsb:
        return clampResult({b.iv.sub(a.iv), b.cg.sub(a.cg)}, sabotage);
      case Opcode::Mul:
        return clampResult({a.iv.mul(b.iv), a.cg.mul(b.cg)}, sabotage);

      case Opcode::And: {
        RangeVal r = topv;
        if (b.isConst(cb) && cb >= 0) {
            std::int64_t hi = cb;
            if (a.iv.lo >= 0)
                hi = std::min(hi, a.iv.hi);
            r.iv = Interval::make(0, hi);
            // Masking off the low k bits proves 2^k alignment.
            const unsigned tz = cb == 0
                                    ? 31
                                    : static_cast<unsigned>(
                                          __builtin_ctzll(
                                              static_cast<std::uint64_t>(
                                                  cb)));
            if (tz > 0)
                r.cg = Congruence::make(1ull << std::min(tz, 31u), 0);
        } else if (a.iv.lo >= 0 && b.iv.lo >= 0) {
            r.iv = Interval::make(0, std::min(a.iv.hi, b.iv.hi));
        }
        return r.reduce();
      }

      case Opcode::Orr:
      case Opcode::Eor: {
        if (a.iv.lo >= 0 && b.iv.lo >= 0) {
            const std::uint64_t m = static_cast<std::uint64_t>(
                std::max(a.iv.hi, b.iv.hi));
            std::uint64_t cover = 1;
            while (cover - 1 < m && cover < (1ull << 31))
                cover <<= 1;
            return RangeVal{Interval::make(
                                0, static_cast<std::int64_t>(cover - 1)),
                            Congruence::top()}
                .reduce();
        }
        return topv;
      }

      case Opcode::Bic:
        if (a.iv.lo >= 0)
            return RangeVal{Interval::make(0, a.iv.hi),
                            Congruence::top()}
                .reduce();
        return topv;

      case Opcode::Lsl:
        if (b.isConst(cb) && cb >= 0) {
            if (cb >= 32)
                return RangeVal::of(0);
            return clampResult(
                {a.iv.mul(Interval::of(1ll << cb)),
                 a.cg.mul(Congruence::of(1ll << cb))},
                sabotage);
        }
        return topv;

      case Opcode::Lsr:
        if (b.isConst(cb) && cb >= 0) {
            if (cb >= 32)
                return RangeVal::of(0);
            if (cb == 0)
                return a;
            if (a.iv.lo >= 0) {
                return RangeVal{Interval::make(a.iv.lo >> cb,
                                               a.iv.hi >> cb),
                                Congruence::top()}
                    .reduce();
            }
            return RangeVal{Interval::make(0, (1ll << (32 - cb)) - 1),
                            Congruence::top()}
                .reduce();
        }
        return topv;

      case Opcode::Asr:
        if (b.isConst(cb) && cb >= 0) {
            const std::int64_t k = std::min<std::int64_t>(cb, 31);
            return RangeVal{Interval::make(a.iv.lo >> k, a.iv.hi >> k),
                            Congruence::top()}
                .reduce();
        }
        // Unknown shift of 0..31: the result stays between the value
        // and its sign (x >= 0 lands in [0, x], x < 0 in [x, -1]).
        return RangeVal{Interval::make(std::min<std::int64_t>(a.iv.lo, 0),
                                       std::max<std::int64_t>(a.iv.hi,
                                                              -1)),
                        Congruence::top()}
            .reduce();

      case Opcode::Min:
        return RangeVal{Interval::make(std::min(a.iv.lo, b.iv.lo),
                                       std::min(a.iv.hi, b.iv.hi)),
                        a.cg.join(b.cg)}
            .reduce();
      case Opcode::Max:
        return RangeVal{Interval::make(std::max(a.iv.lo, b.iv.lo),
                                       std::max(a.iv.hi, b.iv.hi)),
                        a.cg.join(b.cg)}
            .reduce();

      case Opcode::Qadd:
      case Opcode::Qsub: {
        // The hardware clamps the *wrapped* 32-bit result into
        // [satMin, satMax]; with no possible wrap the clamp of the
        // exact result is elementwise monotone, and with a possible
        // wrap the final clamp still bounds the result.
        const Interval s = op == Opcode::Qadd ? a.iv.add(b.iv)
                                              : a.iv.sub(b.iv);
        Interval r{satMin, satMax};
        if (top32.containsAll(s)) {
            r = Interval::make(
                std::clamp<std::int64_t>(s.lo, satMin, satMax),
                std::clamp<std::int64_t>(s.hi, satMin, satMax));
        }
        return RangeVal{r, Congruence::top()}.reduce();
      }

      default:
        return topv;
    }
}

/** Abstract effective address: base + (disp + index) * elemSize. */
RangeVal
evalEa(const RangeState &st, const Inst &inst)
{
    const std::int64_t esize = inst.elemSize();
    RangeVal sum = RangeVal::of(inst.mem.disp);
    if (inst.mem.index.isValid()) {
        const RangeVal idx = st.regAt(inst.mem.index);
        if (idx.isBottom())
            return RangeVal::bottom();
        sum = RangeVal{sum.iv.add(idx.iv), sum.cg.add(idx.cg)};
    }
    RangeVal ea{sum.iv.mul(Interval::of(esize)),
                sum.cg.mul(Congruence::of(esize))};
    ea = RangeVal{ea.iv.add(Interval::of(
                      static_cast<std::int64_t>(inst.mem.base))),
                  ea.cg.add(Congruence::of(
                      static_cast<std::int64_t>(inst.mem.base)))};
    if (addrTop.containsAll(ea.iv))
        return ea.reduce();
    // 32-bit address wrap: keep only the power-of-two stride.
    return RangeVal{addrTop, ea.cg.pow2()}.reduce();
}

void
clearCmp(RangeState &st)
{
    st.cmpLhsFlat = st.cmpRhsFlat = -1;
    st.cmpLhs = st.cmpRhs = Interval::top();
}

void
stepInst(RangeState &st, const Program &prog, const Inst &inst,
         const CalleeEnv &env, unsigned sabotage)
{
    if (!st.reachable)
        return;
    const OpInfo &info = inst.info();
    const bool conditional = inst.cond != Cond::AL;

    auto condWrite = [&](RegId dst, const RangeVal &v) {
        if (!dst.isValid())
            return;
        st.setReg(dst, conditional ? v.join(st.regAt(dst)) : v);
    };

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::B:
      case Opcode::Ret:
        return;

      case Opcode::Mov: {
        const RangeVal v = inst.hasImm ? RangeVal::of(inst.imm)
                                       : st.regAt(inst.src1);
        condWrite(inst.dst, v);
        return;
      }

      case Opcode::Cmp: {
        if (conditional || inst.src1.isFloat()) {
            // A skippable or float compare gives no usable signed
            // relation between register snapshots.
            clearCmp(st);
            return;
        }
        st.cmpLhsFlat = inst.src1.isValid()
                            ? static_cast<int>(inst.src1.flat())
                            : -1;
        st.cmpLhs = st.regAt(inst.src1).iv;
        if (inst.hasImm) {
            st.cmpRhsFlat = -1;
            st.cmpRhs = Interval::of(inst.imm);
        } else {
            st.cmpRhsFlat = inst.src2.isValid()
                                ? static_cast<int>(inst.src2.flat())
                                : -1;
            st.cmpRhs = st.regAt(inst.src2).iv;
        }
        return;
      }

      case Opcode::Bl: {
        clearCmp(st);
        const int target = inst.target;
        const RangeState *exit =
            env.exits ? [&]() -> const RangeState * {
                auto it = env.exits->find(target);
                return it == env.exits->end() ? nullptr : &it->second;
            }()
                      : nullptr;
        const FnSummary *sum =
            env.summaries ? [&]() -> const FnSummary * {
                auto it = env.summaries->find(target);
                return it == env.summaries->end() ? nullptr
                                                  : &it->second;
            }()
                          : nullptr;
        if (!exit || !sum || !exit->reachable) {
            // Unknown callee (or its summary has not stabilized yet):
            // everything it might touch is gone.
            for (auto &r : st.regs)
                r = RangeVal{top32, Congruence::top()};
            st.havocMemory();
            return;
        }
        for (unsigned flat = 0; flat < st.regs.size(); ++flat) {
            if (sum->mayDef.contains(RegId::fromFlat(flat)))
                st.regs[flat] = exit->regs[flat];
        }
        // The callee entry state joins every call site at the joint
        // fixpoint, so its exit cells already account for ours.
        if (exit->memHavoc) {
            st.havocMemory();
        } else {
            st.memHavoc = false;
            st.cells = exit->cells;
        }
        return;
      }

      default:
        break;
    }

    if (info.isLoad) {
        const RangeVal ea = evalEa(st, inst);
        RangeVal v{widthRange(info.memElemSize, info.memSigned),
                   Congruence::top()};
        std::int64_t a;
        if (ea.isConst(a) && a >= 0 &&
            a <= static_cast<std::int64_t>(UINT32_MAX)) {
            v = st.load(prog, static_cast<Addr>(a), info.memElemSize,
                        info.memSigned);
        }
        v = RangeVal{v.iv.meet(widthRange(info.memElemSize,
                                          info.memSigned)),
                     v.cg}
                .reduce();
        condWrite(inst.dst, v);
        return;
    }

    if (info.isStore) {
        const RangeVal ea = evalEa(st, inst);
        RangeVal v = st.regAt(inst.src1);
        if (conditional && ea.iv.singleton() && ea.iv.lo >= 0 &&
            ea.iv.lo <= static_cast<std::int64_t>(UINT32_MAX)) {
            // Weak update: the old contents may survive.
            const RangeVal old =
                st.load(prog, static_cast<Addr>(ea.iv.lo),
                        info.memElemSize, true);
            st.store(ea.iv, info.memElemSize, v.join(old), sabotage);
        } else {
            st.store(ea.iv, info.memElemSize, v, sabotage);
        }
        return;
    }

    if (info.isDataProc) {
        const RangeVal a = st.regAt(inst.src1);
        const RangeVal b = inst.hasImm ? RangeVal::of(inst.imm)
                                       : st.regAt(inst.src2);
        condWrite(inst.dst,
                  evalRangeOp(inst.op, a, b, inst.dst.isFloat(),
                              sabotage));
        return;
    }

    // Vector opcodes and anything unrecognized: havoc the destination.
    if (inst.dst.isValid())
        st.setReg(inst.dst, RangeVal{top32, Congruence::top()});
}

/** Refine @p s knowing relation @p cond between the last cmp's sides. */
void
applyCond(RangeState &s, Cond cond, unsigned sabotage)
{
    if (!s.reachable)
        return;
    const Interval lhs = s.cmpLhs;
    const Interval rhs = s.cmpRhs;
    if (lhs.isTop() && rhs.isTop())
        return;

    auto below = [&](const Interval &b, bool strict) {
        // x <(=) b: x <= b.hi (- 1)
        I128 hi = static_cast<I128>(b.hi);
        if (strict)
            hi -= 1;
        if (sabotage & SabEdgeTighten)
            hi -= 1;  // unsound off-by-one
        if (hi < INT64_MIN)
            return Interval::bottom();
        return Interval::make(INT64_MIN, satToI64(hi));
    };
    auto above = [&](const Interval &b, bool strict) {
        I128 lo = static_cast<I128>(b.lo);
        if (strict)
            lo += 1;
        if (lo > INT64_MAX)
            return Interval::bottom();
        return Interval::make(satToI64(lo), INT64_MAX);
    };

    auto refine = [&](int flat, const Interval &other, bool isLhs) {
        if (flat < 0)
            return;
        Interval c = Interval::top();
        switch (cond) {
          case Cond::LT:
            c = isLhs ? below(other, true) : above(other, true);
            break;
          case Cond::LE:
            c = isLhs ? below(other, false) : above(other, false);
            break;
          case Cond::GT:
            c = isLhs ? above(other, true) : below(other, true);
            break;
          case Cond::GE:
            c = isLhs ? above(other, false) : below(other, false);
            break;
          case Cond::EQ:
            c = other;
            break;
          case Cond::NE: {
            Interval cur = s.regs[flat].iv;
            if (other.singleton() && !cur.empty()) {
                if (cur.lo == other.lo)
                    cur.lo =
                        cur.lo == INT64_MAX ? cur.lo : cur.lo + 1;
                if (cur.hi == other.lo)
                    cur.hi =
                        cur.hi == INT64_MIN ? cur.hi : cur.hi - 1;
                s.regs[flat] =
                    RangeVal{s.regs[flat].iv.meet(cur), s.regs[flat].cg}
                        .reduce();
                if (s.regs[flat].isBottom())
                    s.reachable = false;
            }
            return;
          }
          default:
            return;
        }
        s.regs[flat] =
            RangeVal{s.regs[flat].iv.meet(c), s.regs[flat].cg}.reduce();
        if (s.regs[flat].isBottom())
            s.reachable = false;
    };

    refine(s.cmpLhsFlat, rhs, true);
    refine(s.cmpRhsFlat, lhs, false);
}

Cond
negateCond(Cond cond)
{
    switch (cond) {
      case Cond::EQ: return Cond::NE;
      case Cond::NE: return Cond::EQ;
      case Cond::LT: return Cond::GE;
      case Cond::GE: return Cond::LT;
      case Cond::GT: return Cond::LE;
      case Cond::LE: return Cond::GT;
      default: return Cond::AL;
    }
}

struct RangeProblem
{
    using State = RangeState;
    static constexpr bool forward = true;

    const Program &prog;
    const RegionCfg &cfg;
    const RangeState &entryState;
    CalleeEnv env;
    unsigned sabotage;
    int entryBlock;
    std::vector<bool> loopHead;

    RangeProblem(const Program &p, const RegionCfg &c,
                 const RangeState &entry, CalleeEnv e, unsigned sab)
        : prog(p), cfg(c), entryState(entry), env(e), sabotage(sab),
          entryBlock(c.blockOf(c.entryIndex())),
          loopHead(c.blocks().size(), false)
    {
        for (const CfgLoop &loop : c.loops()) {
            if (loop.headBlock >= 0)
                loopHead[loop.headBlock] = true;
        }
    }

    State initial(std::size_t) { return RangeState::bottom(); }
    bool isBoundary(std::size_t b)
    {
        return static_cast<int>(b) == entryBlock;
    }
    State boundary(std::size_t) { return entryState; }
    bool pinBoundary() { return false; }
    State noEdges(std::size_t) { return RangeState::bottom(); }
    void join(State &acc, const State &o)
    {
        acc.joinWith(o, prog, sabotage);
    }

    void
    edge(std::size_t from, std::size_t to, State &s)
    {
        const BasicBlock &bb = cfg.blocks()[from];
        if (bb.last < 0)
            return;
        const Inst &term = prog.code()[bb.last];
        if (term.op != Opcode::B || term.cond == Cond::AL)
            return;
        const int takenB = cfg.blockOf(term.target);
        const int fallB =
            bb.last + 1 < static_cast<int>(prog.code().size())
                ? cfg.blockOf(bb.last + 1)
                : -1;
        if (takenB == fallB)
            return;
        if (static_cast<int>(to) == takenB)
            applyCond(s, term.cond, sabotage);
        else if (static_cast<int>(to) == fallB)
            applyCond(s, negateCond(term.cond), sabotage);
    }

    State
    transfer(std::size_t b, const State &in)
    {
        if (!in.reachable)
            return RangeState::bottom();
        State st = in;
        const BasicBlock &bb = cfg.blocks()[b];
        for (int i = bb.first; i >= 0 && i <= bb.last; ++i)
            stepInst(st, prog, prog.code()[i], env, sabotage);
        return st;
    }

    bool equal(const State &a, const State &b) { return a == b; }
    bool widenAt(std::size_t b) { return loopHead[b]; }
    void widen(State &next, const State &prev)
    {
        next.widenWith(prev);
    }
};

/** True when the terminator of @p b ends the function. */
bool
blockExitsFn(const Program &prog, const RegionCfg &cfg, std::size_t b)
{
    const BasicBlock &bb = cfg.blocks()[b];
    if (bb.last >= 0) {
        const Opcode op = prog.code()[bb.last].op;
        if (op == Opcode::Ret || op == Opcode::Halt)
            return true;
    }
    return bb.succs.empty();
}

/** Per-iteration step of @p ivFlat inside [first, last]; 0 if messy. */
std::int64_t
loopStep(const Program &prog, int first, int last, unsigned ivFlat,
         int *stepIndex)
{
    std::int64_t step = 0;
    int found = -1;
    for (int i = first; i <= last; ++i) {
        const Inst &inst = prog.code()[i];
        const InstEffects fx = instEffects(inst);
        if (!fx.defs.contains(RegId::fromFlat(ivFlat)))
            continue;
        const bool isStep =
            (inst.op == Opcode::Add || inst.op == Opcode::Sub) &&
            inst.cond == Cond::AL && inst.hasImm &&
            inst.dst.isValid() && inst.dst.flat() == ivFlat &&
            inst.src1.isValid() && inst.src1.flat() == ivFlat;
        if (!isStep || found >= 0)
            return 0;  // conditional, multiple, or non-affine update
        found = i;
        step = inst.op == Opcode::Add ? inst.imm
                                      : -static_cast<std::int64_t>(
                                            inst.imm);
    }
    if (stepIndex)
        *stepIndex = found;
    return found >= 0 ? step : 0;
}

/** Trip-count interval of one do-while loop; top when underivable. */
Interval
deriveTrip(Cond cond, const Interval &start, const Interval &bound,
           std::int64_t step)
{
    if (step == 0 || start.empty() || bound.empty() || start.isTop() ||
        bound.isTop())
        return Interval::top();

    // Normalize down-counting loops into the up-counting picture.
    Cond c = cond;
    Interval s = start, b = bound;
    std::int64_t k = step;
    if (c == Cond::GT || c == Cond::GE) {
        c = c == Cond::GT ? Cond::LT : Cond::LE;
        s = s.neg();
        b = b.neg();
        k = -k;
    }
    if (k <= 0)
        return Interval::top();

    auto ceilDiv = [](I128 num, std::int64_t den) -> I128 {
        if (num <= 0)
            return 0;
        return (num + den - 1) / den;
    };

    // After t body executions iv == s + t*k; the back edge re-enters
    // while `iv <(=) b` holds after the increment (do-while shape, so
    // t >= 1 always).
    switch (c) {
      case Cond::LT: {
        const I128 tmax = ceilDiv(static_cast<I128>(b.hi) - s.lo, k);
        const I128 tmin = ceilDiv(static_cast<I128>(b.lo) - s.hi, k);
        return Interval::make(
            std::max<std::int64_t>(1, satToI64(tmin)),
            std::max<std::int64_t>(1, satToI64(tmax)));
      }
      case Cond::LE: {
        const I128 tmax =
            (static_cast<I128>(b.hi) - s.lo) >= 0
                ? (static_cast<I128>(b.hi) - s.lo) / k + 1
                : 1;
        const I128 tmin =
            (static_cast<I128>(b.lo) - s.hi) >= 0
                ? (static_cast<I128>(b.lo) - s.hi) / k + 1
                : 1;
        return Interval::make(
            std::max<std::int64_t>(1, satToI64(tmin)),
            std::max<std::int64_t>(1, satToI64(tmax)));
      }
      case Cond::NE: {
        if (!s.singleton() || !b.singleton())
            return Interval::top();
        const I128 d = static_cast<I128>(b.lo) - s.lo;
        if (d <= 0 || d % k != 0)
            return Interval::top();
        return Interval::of(satToI64(d / k));
      }
      default:
        return Interval::top();
    }
}

} // namespace

// ---- interprocedural driver ------------------------------------------------

ProgramRanges
solveProgramRanges(const Program &prog, const RangeSolveOptions &opt)
{
    ProgramRanges pr;
    const ProgramLiveness pl = solveProgramLiveness(prog);
    pr.entries = pl.entries;

    const int mainEntry =
        prog.hasLabel("main") ? prog.labelIndex("main") : 0;

    // Entry environments. The core resets every register to zero and
    // memory to the image before the first instruction, so the program
    // entry's state is exact; bl targets start at bottom and grow from
    // their call sites (never-called targets fall back to everything,
    // staying sound for direct tool invocation).
    std::map<int, RangeState> entryStates;
    std::map<int, RangeState> exitStates;
    for (const int e : pr.entries) {
        RangeState s = RangeState::bottom();
        if (e == mainEntry) {
            s.reachable = true;
            for (auto &r : s.regs)
                r = RangeVal::of(0);
        } else {
            auto fn = pl.fns.find(e);
            if (fn == pl.fns.end() || fn->second.callSites == 0)
                s = RangeState::everything();
        }
        entryStates[e] = std::move(s);
        exitStates[e] = RangeState::bottom();
    }

    const unsigned maxRounds =
        opt.maxRounds ? opt.maxRounds
                      : static_cast<unsigned>(pr.entries.size()) + 3;

    std::map<int, FixSolution<RangeState>> sols;
    bool stable = false;

    FixParams params;
    params.widenDelay = 2;
    params.narrowSweeps = opt.narrowSweeps;

    for (pr.rounds = 0; pr.rounds < maxRounds && !stable; ++pr.rounds) {
        stable = true;
        for (const int e : pr.entries) {
            const RegionCfg &cfg = pl.cfgs.at(e);
            RangeProblem problem(prog, cfg, entryStates.at(e),
                                 CalleeEnv{&exitStates, &pl.summaries},
                                 opt.sabotage);
            FixSolution<RangeState> sol = fixSolve(cfg, problem, params);
            if (!sol.converged)
                pr.sound = false;

            RangeState exit = RangeState::bottom();
            for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
                if (blockExitsFn(prog, cfg, b))
                    exit.joinWith(sol.out[b], prog, opt.sabotage);
            }
            clearCmp(exit);
            if (!(exitStates.at(e) == exit)) {
                exitStates[e] = std::move(exit);
                stable = false;
            }
            sols[e] = std::move(sol);
        }

        // Post-convergence call-site collection: re-derive the state
        // just before each bl and fold it into the callee's entry.
        std::map<int, RangeState> nextEntries;
        for (const int e : pr.entries)
            nextEntries[e] = RangeState::bottom();
        nextEntries[mainEntry] = entryStates.at(mainEntry);
        for (const int e : pr.entries) {
            const RegionCfg &cfg = pl.cfgs.at(e);
            const FixSolution<RangeState> &sol = sols.at(e);
            for (const int callIdx : cfg.calls()) {
                const Inst &bl = prog.code()[callIdx];
                if (nextEntries.find(bl.target) == nextEntries.end())
                    continue;
                const int b = cfg.blockOf(callIdx);
                if (b < 0 || !sol.in[b].reachable)
                    continue;
                RangeState at = sol.in[b];
                const BasicBlock &bb = cfg.blocks()[b];
                for (int i = bb.first; i < callIdx; ++i) {
                    stepInst(at, prog, prog.code()[i],
                             CalleeEnv{&exitStates, &pl.summaries},
                             opt.sabotage);
                }
                clearCmp(at);
                nextEntries[bl.target].joinWith(at, prog,
                                                opt.sabotage);
            }
        }
        for (const int e : pr.entries) {
            if (e == mainEntry)
                continue;
            auto fn = pl.fns.find(e);
            if (fn != pl.fns.end() && fn->second.callSites == 0)
                nextEntries[e] = RangeState::everything();
            if (!(nextEntries.at(e) == entryStates.at(e))) {
                entryStates[e] = nextEntries.at(e);
                stable = false;
            }
        }
    }
    if (!stable)
        pr.sound = false;

    // Materialize per-function summaries, loop facts and the joined
    // per-instruction facts.
    for (const int e : pr.entries) {
        const RegionCfg &cfg = pl.cfgs.at(e);
        const FixSolution<RangeState> &sol = sols.at(e);
        ProgramRanges::Fn fn;
        fn.entry = entryStates.at(e);
        fn.exit = exitStates.at(e);
        fn.converged = sol.converged;
        auto facts = pl.fns.find(e);
        fn.callSites = facts != pl.fns.end() ? facts->second.callSites
                                             : 0;

        for (const CfgLoop &loop : cfg.loops()) {
            if (loop.headBlock < 0 || loop.latchBlock < 0)
                continue;
            const RangeState &latchOut = sol.out[loop.latchBlock];
            if (!latchOut.reachable || latchOut.cmpLhsFlat < 0)
                continue;
            const Inst &back = prog.code()[loop.backedgeIndex];
            if (back.op != Opcode::B || back.cond == Cond::AL)
                continue;
            const unsigned ivFlat =
                static_cast<unsigned>(latchOut.cmpLhsFlat);
            const int first = cfg.blocks()[loop.headBlock].first;
            const int last = cfg.blocks()[loop.latchBlock].last;
            int stepIdx = -1;
            const std::int64_t step =
                loopStep(prog, first, last, ivFlat, &stepIdx);
            if (step == 0)
                continue;
            // The trip formulas assume the increment retires before
            // the latch compare (the canonical do-while shape).
            Interval start = Interval::bottom();
            for (const int p : cfg.blocks()[loop.headBlock].preds) {
                if (p >= loop.headBlock && p <= loop.latchBlock)
                    continue;  // back edge
                if (!sol.out[p].reachable)
                    continue;
                start = start.join(sol.out[p].regs[ivFlat].iv);
            }
            LoopFacts lf;
            lf.headIndex = first;
            lf.ivFlat = ivFlat;
            lf.step = step;
            lf.trip = deriveTrip(back.cond, start, latchOut.cmpRhs,
                                 step);
            lf.known = !lf.trip.isTop() && !lf.trip.empty();
            fn.loops[loop.headBlock] = lf;
        }
        pr.fns[e] = std::move(fn);

        for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
            RangeState st = sol.in[b];
            if (!st.reachable)
                continue;
            const BasicBlock &bb = cfg.blocks()[b];
            for (int i = bb.first; i >= 0 && i <= bb.last; ++i) {
                const Inst &inst = prog.code()[i];
                InstFacts &f = pr.facts[i];
                if (inst.isMem()) {
                    const RangeVal ea = evalEa(st, inst);
                    if (!ea.isBottom()) {
                        f.addr = f.hasAddr ? f.addr.join(ea.iv)
                                           : ea.iv;
                        f.addrCg = f.hasAddr ? f.addrCg.join(ea.cg)
                                             : ea.cg;
                        f.hasAddr = true;
                    }
                }
                stepInst(st, prog, inst,
                         CalleeEnv{&exitStates, &pl.summaries},
                         opt.sabotage);
                const bool tracked =
                    inst.op == Opcode::Mov ||
                    (inst.info().isDataProc && !inst.info().isVector) ||
                    (inst.info().isLoad && !inst.info().isVector);
                if (tracked && inst.dst.isValid() &&
                    inst.dst.isScalar()) {
                    const RangeVal v = st.regAt(inst.dst);
                    f.val = f.hasVal ? f.val.join(v) : v;
                    f.hasVal = true;
                }
            }
        }
    }
    if (!pr.sound)
        pr.facts.clear();
    return pr;
}

// ---- ProgramRanges ---------------------------------------------------------

const ProgramRanges::Fn *
ProgramRanges::fnAt(int entry) const
{
    auto it = fns.find(entry);
    return it == fns.end() ? nullptr : &it->second;
}

const InstFacts *
ProgramRanges::factsAt(int index) const
{
    auto it = facts.find(index);
    return it == facts.end() ? nullptr : &it->second;
}

Interval
ProgramRanges::tripBound(int entry) const
{
    const Fn *fn = fnAt(entry);
    if (!fn || !sound)
        return Interval::top();
    Interval trip = Interval::bottom();
    bool any = false;
    for (const auto &[head, lf] : fn->loops) {
        if (!lf.known)
            continue;
        trip = trip.join(lf.trip);
        any = true;
    }
    return any ? trip : Interval::top();
}

std::uint64_t
ProgramRanges::accessAlign(int index) const
{
    if (!sound)
        return 1;
    const InstFacts *f = factsAt(index);
    if (!f || !f->hasAddr)
        return 1;
    if (f->addrCg.isConst()) {
        const std::int64_t v = f->addrCg.rem;
        return pow2Part(static_cast<std::uint64_t>(v < 0 ? -v : v));
    }
    if (f->addrCg.isTop())
        return 1;
    const std::uint64_t r = static_cast<std::uint64_t>(
        f->addrCg.rem < 0 ? -f->addrCg.rem : f->addrCg.rem);
    if (r == 0)
        return pow2Part(f->addrCg.mod);
    return pow2Part(gcd64(f->addrCg.mod, r));
}

// ---- RangeFacts ------------------------------------------------------------

RangeFacts::RangeFacts(const Program &prog, const ProgramRanges &ranges,
                       int entry)
    : prog_(prog), ranges_(ranges), fn_(ranges.fnAt(entry))
{
}

bool
RangeFacts::entryReg(RegId reg, Word &value, std::string &fact) const
{
    if (!ranges_.sound || !fn_ || !fn_->entry.reachable ||
        !reg.isScalar())
        return false;
    std::int64_t c;
    if (!fn_->entry.regs[reg.flat()].isConst(c))
        return false;
    value = static_cast<Word>(static_cast<SWord>(c));
    std::ostringstream os;
    os << "entry " << regName(reg) << " = " << c << " over "
       << fn_->callSites << " call site"
       << (fn_->callSites == 1 ? "" : "s");
    fact = os.str();
    return true;
}

bool
RangeFacts::readCell(Addr addr, unsigned size, bool sign_extend,
                     Word &value, std::string &fact) const
{
    if (!ranges_.sound || !fn_ || !fn_->entry.reachable ||
        fn_->entry.memHavoc)
        return false;
    const auto &cells = fn_->entry.cells;
    RangeVal v;
    bool from_image = false;
    auto it = cells.find(addr);
    if (it != cells.end() && it->second.size == size) {
        v = cellToLoad(it->second.val, size, sign_extend);
    } else {
        from_image = true;
        // Absent cell: unwritten on every path to entry, so the image
        // value persists — unless a differently-shaped write overlaps.
        for (auto o = cells.lower_bound(addr >= 8 ? addr - 8 : 0);
             o != cells.end() && o->first < addr + size; ++o) {
            if (o->first + o->second.size > addr)
                return false;
        }
        Word raw = 0;
        if (!prog_.readInitialElem(addr, size, sign_extend, raw))
            return false;
        v = RangeVal::of(
            static_cast<std::int64_t>(static_cast<SWord>(raw)));
    }
    std::int64_t c;
    if (!v.isConst(c))
        return false;
    if (sign_extend) {
        value = static_cast<Word>(static_cast<SWord>(c));
    } else {
        const std::uint64_t mask =
            size >= 4 ? 0xFFFFFFFFull : (1ull << (8 * size)) - 1;
        value = static_cast<Word>(static_cast<std::uint64_t>(c) & mask);
    }
    // Image reads dedupe to one fact per array: every region touches
    // many elements and per-cell lines would drown the report. Cells
    // a prior store pinned keep the exact per-cell constant.
    std::ostringstream os;
    const std::string sym = prog_.symbolAt(addr);
    if (from_image) {
        os << "entry image of ";
        if (!sym.empty())
            os << sym;
        else
            os << "0x" << std::hex << addr << std::dec;
        os << " unwritten before entry";
    } else {
        os << "entry cell ";
        if (!sym.empty())
            os << sym << "+" << addr - prog_.symbol(sym);
        else
            os << "0x" << std::hex << addr << std::dec;
        os << " = " << c;
    }
    fact = os.str();
    return true;
}

// ---- dischargeDeps ---------------------------------------------------------

namespace
{

/** Can @p a and @p b ever touch a common byte? */
bool
provenDisjoint(const MemAccess &a, const MemAccess &b,
               std::string &how)
{
    // Footprint interval disjointness over the recorded traces.
    if (a.maxEnd <= b.minEa || b.maxEnd <= a.minEa) {
        how = "interval";
        return true;
    }
    // Congruence separation: an affine access with stride s only
    // touches bytes in [firstEa, firstEa + elemSize) mod g for any g
    // dividing s, so two residue blocks that are cyclically disjoint
    // mod g = gcd(|s_a|, |s_b|) never alias.
    const bool affA = a.cls == AccessClass::UnitStride ||
                      a.cls == AccessClass::Strided;
    const bool affB = b.cls == AccessClass::UnitStride ||
                      b.cls == AccessClass::Strided;
    if (!affA || !affB || a.strideBytes == 0 || b.strideBytes == 0)
        return false;
    const std::uint64_t g = gcd64(
        static_cast<std::uint64_t>(a.strideBytes < 0 ? -a.strideBytes
                                                     : a.strideBytes),
        static_cast<std::uint64_t>(b.strideBytes < 0 ? -b.strideBytes
                                                     : b.strideBytes));
    if (g == 0 || a.elemSize > g || b.elemSize > g)
        return false;
    const std::uint64_t ra = a.firstEa % g;
    const std::uint64_t rb = b.firstEa % g;
    // Blocks [ra, ra+ea) and [rb, rb+eb) cyclically disjoint mod g.
    const std::uint64_t d1 = (rb + g - ra) % g;  // rb relative to ra
    const std::uint64_t d2 = (ra + g - rb) % g;
    if (d1 >= a.elemSize && d2 >= b.elemSize && d1 + d2 != 0) {
        how = "congruence";
        return true;
    }
    return false;
}

} // namespace

unsigned
dischargeDeps(const Program &prog, int entry,
              const ProgramRanges &ranges, DepcheckResult &dep)
{
    (void)prog;
    (void)entry;
    if (!ranges.sound || !dep.analyzed || !dep.resolved)
        return 0;

    // Prove that no loop-carried dependence exists at all: every pair
    // of accesses with at least one store never shares a byte, and no
    // store revisits its own footprint at a breakable distance.
    bool allDisjoint = true;
    bool sawCongruence = false;
    unsigned pairs = 0;
    for (std::size_t i = 0; i < dep.accesses.size() && allDisjoint;
         ++i) {
        const MemAccess &a = dep.accesses[i];
        // Self output dependences: a store with a non-overlapping
        // stride never rewrites a byte; vst writes lanes ascending,
        // but partial self-overlap is left to the exact pair test.
        if (a.isStore && a.events > 1) {
            const std::int64_t s =
                a.strideBytes < 0 ? -a.strideBytes : a.strideBytes;
            const bool affine = a.cls == AccessClass::UnitStride ||
                                a.cls == AccessClass::Strided;
            if (!affine || s < static_cast<std::int64_t>(a.elemSize))
                allDisjoint = false;
        }
        for (std::size_t j = i + 1;
             j < dep.accesses.size() && allDisjoint; ++j) {
            const MemAccess &b = dep.accesses[j];
            if (!a.isStore && !b.isStore)
                continue;
            ++pairs;
            std::string how;
            if (!provenDisjoint(a, b, how)) {
                allDisjoint = false;
            } else if (how == "congruence") {
                sawCongruence = true;
            }
        }
    }
    if (!allDisjoint || dep.accesses.empty())
        return 0;

    unsigned flipped = 0;
    for (auto &v : dep.byWidth) {
        if (v.kind != WidthVerdict::Kind::Unknown)
            continue;
        if (v.reason != DepReason::PairBudgetAtWidth &&
            v.reason != DepReason::PairBudgetBefore)
            continue;
        v.kind = WidthVerdict::Kind::Safe;
        v.viaRange = true;
        v.reason = DepReason::None;
        std::ostringstream os;
        os << "range: " << (sawCongruence ? "congruence separation"
                                          : "footprint disjointness")
           << " over " << dep.accesses.size() << " accesses ("
           << pairs << " store pairs) proves independence at every "
           << "width";
        v.why = os.str();
        ++flipped;
    }
    return flipped;
}

// ---- RangeObserver ---------------------------------------------------------

void
RangeObserver::onRetire(const RetireInfo &info, Cycles now)
{
    (void)now;
    if (!ranges_.sound || !info.executed || !info.inst)
        return;
    const Inst &inst = *info.inst;
    const InstFacts *f = ranges_.factsAt(info.index);
    if (!f)
        return;

    const OpInfo &op = inst.info();
    const bool valueTracked =
        (inst.op == Opcode::Mov || (op.isDataProc && !op.isVector) ||
         (op.isLoad && !op.isVector)) &&
        inst.dst.isValid() && inst.dst.isScalar();

    if (valueTracked && f->hasVal) {
        ++checked_;
        const std::int64_t v =
            static_cast<std::int64_t>(static_cast<SWord>(info.value));
        if (!f->val.contains(v)) {
            std::ostringstream os;
            os << "inst " << info.index << " `" << inst.toString()
               << "`: retired value " << v << " outside "
               << f->val.str();
            violations_.push_back(os.str());
        }
    }
    if (op.memElemSize != 0 && !op.isVector && f->hasAddr &&
        info.memAddr != invalidAddr) {
        ++checked_;
        const std::int64_t a = static_cast<std::int64_t>(info.memAddr);
        if (!f->addr.contains(a) || !f->addrCg.contains(a)) {
            std::ostringstream os;
            os << "inst " << info.index << " `" << inst.toString()
               << "`: address 0x" << std::hex << info.memAddr
               << std::dec << " outside " << f->addr.str() << " "
               << f->addrCg.str();
            violations_.push_back(os.str());
        }
    }
}

} // namespace liquid
