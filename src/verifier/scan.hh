/**
 * @file
 * liquid-scan: whole-binary SIMD-region discovery (library API; the
 * CLI front-end is tools/liquid_scan).
 *
 * Where liquid-verify checks the regions the scalarizer *says* it
 * outlined (hinted bl sites), scanProgram() answers the Revec-style
 * question for an arbitrary assembled binary with no scalarizer
 * metadata: which parts are Liquid-SIMD translatable, and what would
 * an accelerator gain? The pipeline:
 *
 *   1. discovery    — recover the interprocedural CFG: every bl target
 *                     (hinted or not) is an outlined function under
 *                     the bl/ret convention; natural loops inside each
 *                     function are the vectorization candidates.
 *   2. liveness     — solve register liveness for all functions to a
 *                     joint fixpoint and check each candidate against
 *                     the paper's region-boundary contract: no scalar
 *                     live-ins (regions are self-contained), results
 *                     escape only through scalar registers the caller
 *                     reads back, induction variables stay private,
 *                     no spill-like traffic inside loop bodies, and
 *                     only reducible loops.
 *   3. prediction   — pipe each surviving candidate through the PR-1
 *                     Table-1 rule mirror, depcheck and the cost model
 *                     at every width in ScanOptions::widths, yielding
 *                     a per-region, per-width static speedup.
 *
 * Severity contract matches diagnostics.hh: Ok = the translator would
 * commit this region if it were hinted; Error = it would abort (or
 * the contract is structurally violated); Warn = runtime-dependent or
 * merely suspicious (extra discoveries that the scalarizer did not
 * emit are at most Warn).
 */

#ifndef LIQUID_VERIFIER_SCAN_HH
#define LIQUID_VERIFIER_SCAN_HH

#include <vector>

#include "verifier/liveness.hh"
#include "verifier/range.hh"
#include "verifier/verifier.hh"

namespace liquid
{

/** Scan options. */
struct ScanOptions
{
    /** Target translator/accelerator model (simdWidth is per-width). */
    TranslatorConfig config;
    /** Accelerator widths to predict, ascending. */
    std::vector<unsigned> widths{2, 4, 8, 16};
    /** Mirror the dynamic width-fallback ladder per width. */
    bool widthFallback = true;
    /** Memory-dependence analysis limits (see depcheck.hh). */
    DepcheckOptions dep;
    /** Run the Table-1/depcheck/cost-model prediction stage. */
    bool predict = true;
    /**
     * Back every per-width prediction with the symbolic translation-
     * validation prover (see proof.hh): committed widths carry a
     * proved/refuted/unknown verdict, and a refutation downgrades the
     * prediction to Error with the counterexample summary.
     */
    bool prove = false;
    /**
     * Whole-program value-range analysis (range.hh). When set and
     * sound, entry facts and budget discharges flow into every
     * per-width prediction (VerifyOptions::ranges), and proven loop
     * trip-count bounds and access alignment refine the cost model
     * and are surfaced per region (ScanRegion::tripCountBound).
     */
    const ProgramRanges *ranges = nullptr;
};

/** One width's prediction for a candidate region. */
struct WidthPrediction
{
    unsigned requestedWidth = 0;
    /** Full PR-1 verdict (reuses the liquid-verify contract). */
    RegionReport report;
};

/** Everything the scanner learned about one discovered function. */
struct ScanRegion
{
    int entryIndex = -1;
    std::string entryLabel;
    unsigned callSites = 0;   ///< bl sites targeting this entry
    /** True if some call site carried scalarizer metadata (bl.simd).
     *  The scanner never *uses* it; the golden tests key on it. */
    bool hinted = false;
    unsigned widthHint = 0;   ///< largest bl.simd width seen (info only)

    unsigned blockCount = 0;
    unsigned loopCount = 0;
    bool hasLoop = false;
    bool irreducible = false;

    // Liveness facts (region-boundary contract inputs).
    RegSet liveIn;            ///< registers read before written
    RegSet liveOutDemanded;   ///< defs some caller reads after the bl
    RegSet ivRegs;            ///< identified loop induction variables

    Severity contractVerdict = Severity::Ok;
    std::vector<Diagnostic> contractDiags;

    /** Survived discovery + contract: worth predicting. */
    bool candidate = false;

    /**
     * Proven scalar-iteration bound over all calling contexts
     * (ScanOptions::ranges); top when no bound was proven or the
     * analysis did not run.
     */
    Interval tripCountBound = Interval::top();

    std::vector<WidthPrediction> predictions;

    /**
     * Width-validity set (liquid-poly), computed once per candidate
     * during prediction: a one-line predicate on N, the exact Ok
     * widths within the probe horizon, and whether the region earns
     * the structural safe-for-all-N claim.
     */
    bool polyAnalyzed = false;
    bool polyUnbounded = false;
    std::string widthValidity;
    std::vector<unsigned> polyOkWidths;

    /** Best committed width and its predicted speedup (0 if none). */
    unsigned bestWidth = 0;
    double bestSpeedup = 0.0;

    /** Worst severity across contract and predictions. */
    Severity overallVerdict() const;
};

/** Whole-binary scan results. */
struct ScanReport
{
    std::vector<ScanRegion> regions;

    unsigned candidateCount() const;
    bool anyError() const;
};

/**
 * Scan the whole binary @p prog. Uses no scalarizer metadata: bl hint
 * flags are recorded for reporting but never influence discovery,
 * contract checking or prediction.
 */
ScanReport scanProgram(const Program &prog, const ScanOptions &opts);

/** Multi-line human-readable report for one region (CLI output). */
std::string formatScanRegion(const ScanRegion &region);

} // namespace liquid

#endif // LIQUID_VERIFIER_SCAN_HH
