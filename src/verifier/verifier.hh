/**
 * @file
 * liquid-verify: static Table-1 conformance verification of assembled
 * programs (library API; the CLI front-end is tools/liquid_verify).
 *
 * verifyProgram() finds every outlined region (hinted bl target),
 * reconstructs its CFG and runs the static rule analysis at the widths
 * the dynamic translator would try, producing one RegionReport per
 * region: Ok (translation will commit; predicted width/microcode size
 * attached), Error (translation will abort; predicted reason
 * attached) or Warn (runtime-dependent; the condition is named).
 */

#ifndef LIQUID_VERIFIER_VERIFIER_HH
#define LIQUID_VERIFIER_VERIFIER_HH

#include "asm/program.hh"
#include "translator/translator.hh"
#include "verifier/depcheck.hh"
#include "verifier/diagnostics.hh"

namespace liquid
{

struct ProgramRanges;

/** Verification options. */
struct VerifyOptions
{
    /** Target translator/accelerator model to verify against. */
    TranslatorConfig config;
    /**
     * Mirror the translator's width fallback: when an attempt fails
     * with a width-dependent reason, retry at half width before
     * concluding. Disable to predict a single translateOffline() call.
     */
    bool widthFallback = true;
    /**
     * Memory-dependence analysis limits (see depcheck.hh). The pair
     * budget is spent in ascending width order, so shrinking it
     * degrades wide widths to Warn before narrow ones.
     */
    DepcheckOptions dep;
    /**
     * When depcheck cannot resolve a width (Warn), invoke the
     * translation-validation prover (proof.hh) on the microcode the
     * translator would commit: a Proved verdict upgrades the region to
     * Ok with the proof attached, a Refuted verdict becomes a
     * depMiscompile Error, and Unknown leaves the Warn standing.
     */
    bool prove = false;
    /**
     * Whole-program value-range analysis (range.hh). When set and
     * sound, proven region-entry facts seed the rule-mirror and
     * depcheck walks (turning runtime-dependent Warns into concrete
     * verdicts), and pair-budget-exhausted depcheck Unknowns are
     * discharged by footprint disjointness or congruence separation.
     * Every consumed fact is attached to the report.
     */
    const ProgramRanges *ranges = nullptr;
    /**
     * Attach the width-polymorphic validity set (poly.hh) to every
     * report: one recording walk per region yields the predicate on N
     * (summary, exact Ok widths, interval × congruence constraints)
     * alongside the per-width verdict.
     */
    bool poly = false;
};

/**
 * Verify the region entered at @p entry_index against the options'
 * translator model. @p width_hint is the region's compiled maximum
 * vectorizable width (the bl.simd<N> operand; 0 = none).
 */
RegionReport verifyRegion(const Program &prog, int entry_index,
                          const VerifyOptions &opts,
                          unsigned width_hint = 0);

/** Verify every hinted outlined region of @p prog. */
ProgramReport verifyProgram(const Program &prog,
                            const VerifyOptions &opts);

} // namespace liquid

#endif // LIQUID_VERIFIER_VERIFIER_HH
