#include "verifier/verifier.hh"

#include <algorithm>
#include <optional>
#include <sstream>

#include "translator/cost_model.hh"
#include "translator/offline.hh"
#include "verifier/cfg.hh"
#include "verifier/depcheck.hh"
#include "verifier/liveness.hh"
#include "verifier/poly.hh"
#include "verifier/proof.hh"
#include "verifier/range.hh"
#include "verifier/rules.hh"

namespace liquid
{

namespace
{

/** Ok-verdict coverage check: CFG-reachable but never analyzed. */
void
addCoverageDiags(const RegionCfg &cfg, const StaticOutcome &outcome,
                 RegionReport &report)
{
    std::vector<int> unseen;
    for (const int i : cfg.instructions()) {
        if (!std::binary_search(outcome.visited.begin(),
                                outcome.visited.end(), i))
            unseen.push_back(i);
    }
    if (unseen.empty())
        return;
    std::ostringstream os;
    os << unseen.size() << " instruction(s) reachable in the CFG were "
       << "never executed on the analyzed path (first at inst "
       << unseen.front()
       << "); the prediction holds only while those paths stay cold";
    Diagnostic d;
    d.severity = Severity::Warn;
    d.instIndex = unseen.front();
    d.message = os.str();
    report.diags.push_back(std::move(d));
}

/**
 * Run the translation-validation prover against the microcode the
 * offline translator commits at @p bind. nullopt when translation
 * itself aborts (there is nothing to prove against). Replay is off:
 * the static verifier reports the counterexample assignment but does
 * not spin up a simulator pair.
 */
std::optional<WidthProof>
proveBindWidth(const Program &prog, int entry_index, unsigned bind,
               unsigned width_hint, const ProgramRanges *ranges)
{
    const OfflineResult off =
        translateOffline(prog, entry_index, bind, width_hint);
    if (!off.ok)
        return std::nullopt;
    ProofOptions popts;
    popts.replay = false;
    popts.ranges = ranges;
    return proveTranslation(prog, entry_index, off.entry,
                            solveProgramLiveness(prog).demandAt(
                                entry_index),
                            popts);
}

} // namespace

/** The per-width verification cascade; poly attachment happens in the
 *  public wrapper so every early return is covered. */
static RegionReport
verifyRegionImpl(const Program &prog, int entry_index,
                 const VerifyOptions &opts, unsigned width_hint)
{
    RegionReport report;
    report.entryIndex = entry_index;
    report.entryLabel = prog.labelAt(entry_index);
    report.requestedWidth = opts.config.simdWidth;
    report.widthHint = width_hint;

    const RegionCfg cfg = RegionCfg::build(prog, entry_index);
    report.blockCount = static_cast<unsigned>(cfg.blocks().size());
    report.loopCount = static_cast<unsigned>(cfg.loops().size());

    if (cfg.fallsOffEnd()) {
        Diagnostic d;
        d.severity = Severity::Warn;
        d.message = "a reachable path runs past the end of the "
                    "program text";
        report.diags.push_back(std::move(d));
    }

    // Mirror of Translator::onCall width binding.
    unsigned bind = opts.config.simdWidth;
    if (width_hint != 0)
        bind = std::min(bind, width_hint);
    if (bind < 2) {
        report.verdict = Severity::Warn;
        Diagnostic d;
        d.severity = Severity::Warn;
        d.instIndex = entry_index;
        d.message = "effective width below 2: the translator never "
                    "captures this region";
        report.diags.push_back(std::move(d));
        return report;
    }

    // Proven region-entry facts from the whole-program range analysis
    // feed both abstract walks (the rule mirror and depcheck).
    std::optional<RangeFacts> rangeFacts;
    const EntryFacts *facts = nullptr;
    if (opts.ranges && opts.ranges->sound) {
        rangeFacts.emplace(prog, *opts.ranges, entry_index);
        facts = &*rangeFacts;
    }
    DepcheckOptions depOpts = opts.dep;
    depOpts.facts = facts;

    auto noteFacts = [&](const std::vector<std::string> &used) {
        for (const std::string &f : used) {
            if (std::find(report.rangeFacts.begin(),
                          report.rangeFacts.end(),
                          f) == report.rangeFacts.end())
                report.rangeFacts.push_back(f);
        }
    };

    /** One `range:` Ok diagnostic per consumed fact (deduplicated). */
    auto attachRangeEvidence = [&]() {
        for (const std::string &f : report.rangeFacts) {
            const std::string msg = "range: " + f;
            bool seen = false;
            for (const Diagnostic &d : report.diags)
                seen = seen || d.message == msg;
            if (seen)
                continue;
            Diagnostic d;
            d.severity = Severity::Ok;
            d.instIndex = entry_index;
            d.message = msg;
            report.diags.push_back(std::move(d));
        }
    };

    /** Feed proven trip bounds and access alignment to the cost model. */
    auto refineCost = [&](RegionCostInputs &ci) {
        if (!opts.ranges || !opts.ranges->sound)
            return;
        const Interval trip = opts.ranges->tripBound(entry_index);
        if (!trip.isTop() && !trip.empty() && trip.hi > 0 &&
            trip.hi > static_cast<std::int64_t>(ci.loopIters))
            ci.tripBound = static_cast<unsigned long>(trip.hi);
        unsigned align = 0;
        for (const int i : cfg.instructions()) {
            if (!prog.code()[i].isMem())
                continue;
            const unsigned a =
                static_cast<unsigned>(opts.ranges->accessAlign(i));
            align = align == 0 ? a : std::min(align, a);
        }
        ci.minAlignBytes = align;
    };

    // Memory-dependence analysis is width-independent (it resolves all
    // candidate widths in one walk); run it lazily, at most once.
    bool dep_ran = false;
    auto depResult = [&]() -> const DepcheckResult & {
        if (!dep_ran) {
            report.dep = analyzeDeps(prog, entry_index, cfg, depOpts);
            report.depAnalyzed = true;
            dep_ran = true;
            noteFacts(report.dep.factsUsed);
            if (opts.ranges) {
                report.rangeDischarged = dischargeDeps(
                    prog, entry_index, *opts.ranges, report.dep);
            }
        }
        return report.dep;
    };

    // The headline verdict is the first non-Ok outcome on the fallback
    // cascade (what a translateOffline() call at full width reports) —
    // unless a narrower width later proves Ok, which overrides it: the
    // dynamic translator retries width-dependent failures and ends up
    // committed, so the region's fate is Ok.
    bool headline_set = false;
    auto headline = [&](Severity sev, AbortReason reason) {
        if (headline_set)
            return;
        headline_set = true;
        report.verdict = sev;
        report.reason = reason;
    };

    // Width-independent Warn conditions recur at every fallback width;
    // report each condition once.
    auto warnOnce = [&](int inst_index, std::string message) {
        for (const Diagnostic &d : report.diags) {
            if (d.severity == Severity::Warn && d.message == message)
                return;
        }
        Diagnostic d;
        d.severity = Severity::Warn;
        d.instIndex = inst_index;
        d.message = std::move(message);
        report.diags.push_back(std::move(d));
    };

    for (; bind >= 2; bind /= 2) {
        const StaticOutcome outcome = analyzeRegion(
            prog, entry_index, opts.config, bind, facts);
        report.analyzedInsts = outcome.analyzedInsts;
        noteFacts(outcome.factsUsed);

        if (outcome.verdict == Severity::Ok) {
            const DepcheckResult &dep = depResult();
            const WidthVerdict &wv = dep.verdictAt(bind);

            if (wv.kind == WidthVerdict::Kind::Unsafe) {
                // The translator's runtime dependence check misses
                // this pair: it commits at this width and the vector
                // groups execute the pair in the wrong order. The
                // cascade dynamically stops here, so this is the
                // region's fate regardless of any earlier headline.
                headline_set = true;
                report.verdict = Severity::Error;
                report.reason = AbortReason::MemoryDependence;
                report.depMiscompile = true;
                report.predictedWidth = bind;
                report.predictedUcode = outcome.ucodeInsts;
                report.predictedCvecs = outcome.cvecs;
                Diagnostic d;
                d.severity = Severity::Error;
                d.reason = AbortReason::MemoryDependence;
                d.instIndex = wv.pair.storeIndex;
                std::ostringstream os;
                os << "silent miscompile at width " << bind
                   << ": the store at inst " << wv.pair.storeIndex
                   << " and the "
                   << (wv.pair.otherIsStore ? "store" : "load")
                   << " at inst " << wv.pair.otherIndex
                   << " touch address 0x" << std::hex << wv.pair.addr
                   << std::dec << " at carried distance "
                   << wv.pair.distance << " < " << bind
                   << " with textual order opposite iteration order; "
                   << "the dynamic dependence check cannot see this "
                   << "pair, so translation commits anyway";
                d.message = os.str();
                report.diags.push_back(std::move(d));
                return report;
            }

            if (wv.kind == WidthVerdict::Kind::Unknown) {
                // The static dependence analysis is out of its depth;
                // the translation-validation prover (when enabled) can
                // still settle the width by checking the microcode the
                // translator would actually commit.
                if (opts.prove) {
                    const std::optional<WidthProof> po = proveBindWidth(
                        prog, entry_index, bind, width_hint,
                        opts.ranges);
                    if (po) {
                        const WidthProof &wp = *po;
                        report.proofVerdict =
                            proofVerdictName(wp.verdict);
                        report.proofSummary = wp.summary;

                        if (wp.verdict == ProofVerdict::Proved) {
                            headline_set = true;
                            report.verdict = Severity::Ok;
                            report.reason = AbortReason::None;
                            report.predictedWidth = bind;
                            report.predictedUcode = outcome.ucodeInsts;
                            report.predictedCvecs = outcome.cvecs;

                            RegionCostInputs ci;
                            ci.scalarInsts = outcome.analyzedInsts;
                            ci.ucodeInsts = outcome.ucodeInsts;
                            ci.ucodeLoopInsts = outcome.ucodeLoopInsts;
                            ci.loopIters = outcome.loopIters;
                            ci.width = bind;
                            refineCost(ci);
                            const RegionCostEstimate cost =
                                estimateRegionCost(ci);
                            report.predictedScalarCycles =
                                cost.scalarCycles;
                            report.predictedSimdCycles =
                                cost.simdCycles;
                            report.predictedSpeedup = cost.speedup;

                            Diagnostic d;
                            d.severity = Severity::Ok;
                            d.instIndex = entry_index;
                            d.message =
                                "depcheck could not resolve width " +
                                std::to_string(bind) +
                                ", but the translation proof closes "
                                "it: " + wp.summary;
                            report.diags.push_back(std::move(d));
                            attachRangeEvidence();
                            addCoverageDiags(cfg, outcome, report);
                            return report;
                        }

                        if (wp.verdict == ProofVerdict::Refuted) {
                            headline_set = true;
                            report.verdict = Severity::Error;
                            report.reason =
                                AbortReason::MemoryDependence;
                            report.depMiscompile = true;
                            report.predictedWidth = bind;
                            report.predictedUcode = outcome.ucodeInsts;
                            report.predictedCvecs = outcome.cvecs;
                            Diagnostic d;
                            d.severity = Severity::Error;
                            d.reason = AbortReason::MemoryDependence;
                            d.instIndex = entry_index;
                            d.message =
                                "silent miscompile at width " +
                                std::to_string(bind) +
                                ", proven by translation validation: " +
                                wp.summary;
                            report.diags.push_back(std::move(d));
                            return report;
                        }
                        // Unknown: fall through to the Warn below.
                    }
                }

                headline(Severity::Warn, AbortReason::None);
                std::ostringstream os;
                os << "memoryDependence";
                if (dep.resolved) {
                    // Budget exhaustion is genuinely per-width.
                    os << " at width " << bind << ": " << wv.why;
                } else {
                    os << ": " << dep.unresolvedWhy;
                }
                warnOnce(dep.unresolvedIndex, os.str());
                if (!opts.widthFallback)
                    return report;
                continue;
            }

            if (wv.viaRange) {
                // The pair-test budget died here, but the range
                // analysis closed the width; record the proof.
                Diagnostic d;
                d.severity = Severity::Ok;
                d.instIndex = entry_index;
                d.message = wv.why + " (discharged past the pair-test "
                            "budget at width " +
                            std::to_string(bind) + ")";
                report.diags.push_back(std::move(d));
            }

            // Depcheck proves SIMD at this width preserves scalar
            // memory semantics: the commit is safe. The prover (when
            // enabled) double-checks the committed microcode end to
            // end; a refutation means depcheck and the prover
            // disagree, and the prover holds a concrete
            // counterexample, so it wins.
            if (opts.prove) {
                const std::optional<WidthProof> po = proveBindWidth(
                    prog, entry_index, bind, width_hint, opts.ranges);
                if (po) {
                    report.proofVerdict = proofVerdictName(po->verdict);
                    report.proofSummary = po->summary;
                    if (po->verdict == ProofVerdict::Refuted) {
                        headline_set = true;
                        report.verdict = Severity::Error;
                        report.reason = AbortReason::MemoryDependence;
                        report.depMiscompile = true;
                        report.predictedWidth = bind;
                        report.predictedUcode = outcome.ucodeInsts;
                        report.predictedCvecs = outcome.cvecs;
                        Diagnostic d;
                        d.severity = Severity::Error;
                        d.reason = AbortReason::MemoryDependence;
                        d.instIndex = entry_index;
                        d.message =
                            "depcheck passed width " +
                            std::to_string(bind) +
                            " but translation validation refutes "
                            "it: " + po->summary;
                        report.diags.push_back(std::move(d));
                        return report;
                    }
                }
            }

            headline_set = true;
            report.verdict = Severity::Ok;
            report.reason = AbortReason::None;
            report.predictedWidth = bind;
            report.predictedUcode = outcome.ucodeInsts;
            report.predictedCvecs = outcome.cvecs;

            RegionCostInputs ci;
            ci.scalarInsts = outcome.analyzedInsts;
            ci.ucodeInsts = outcome.ucodeInsts;
            ci.ucodeLoopInsts = outcome.ucodeLoopInsts;
            ci.loopIters = outcome.loopIters;
            ci.width = bind;
            refineCost(ci);
            const RegionCostEstimate cost = estimateRegionCost(ci);
            report.predictedScalarCycles = cost.scalarCycles;
            report.predictedSimdCycles = cost.simdCycles;
            report.predictedSpeedup = cost.speedup;

            Diagnostic d;
            d.severity = Severity::Ok;
            d.instIndex = entry_index;
            std::ostringstream os;
            os << "translation commits at width " << bind << " ("
               << outcome.ucodeInsts << " microcode insts, "
               << outcome.loopsVerified << " verified loop(s))";
            d.message = os.str();
            report.diags.push_back(std::move(d));
            attachRangeEvidence();
            addCoverageDiags(cfg, outcome, report);
            return report;
        }

        if (outcome.verdict == Severity::Warn) {
            headline(Severity::Warn, AbortReason::None);
            // The mirror cannot predict this width's outcome, but a
            // narrower width may still be certifiable; keep walking so
            // a later-width Ok can claim the region.
            warnOnce(outcome.reasonIndex, outcome.warnCondition);
            if (!opts.widthFallback)
                return report;
            continue;
        }

        // Error at this width.
        headline(Severity::Error, outcome.reason);
        Diagnostic d;
        d.severity = Severity::Error;
        d.reason = outcome.reason;
        d.instIndex = outcome.reasonIndex;
        std::ostringstream os;
        os << "translation aborts at width " << bind << ": "
           << abortReasonName(outcome.reason) << " ("
           << reasonClassName(abortReasonClass(outcome.reason))
           << " check: " << abortReasonDescription(outcome.reason)
           << ")";
        d.message = os.str();
        report.diags.push_back(std::move(d));

        if (outcome.reason == AbortReason::MemoryDependence) {
            // The runtime interval test is conservative: note when the
            // distance analysis proves the overlap harmless. The
            // verdict stays Error — the hardware will still abort.
            const DepcheckResult &dep = depResult();
            if (dep.resolved &&
                dep.verdictAt(bind).kind == WidthVerdict::Kind::Safe) {
                Diagnostic note;
                note.severity = Severity::Ok;
                note.instIndex = outcome.reasonIndex;
                std::ostringstream ns;
                ns << "conservative abort: depcheck proves the "
                   << "overlapping streams safe at width " << bind
                   << " (" << dep.proofSummary(bind)
                   << "), but the translator's interval test cannot";
                note.message = ns.str();
                report.diags.push_back(std::move(note));
            }
        }

        if (!opts.widthFallback ||
            !abortIsWidthDependent(outcome.reason)) {
            attachRangeEvidence();
            return report;
        }
    }
    attachRangeEvidence();
    return report;
}

RegionReport
verifyRegion(const Program &prog, int entry_index,
             const VerifyOptions &opts, unsigned width_hint)
{
    RegionReport report =
        verifyRegionImpl(prog, entry_index, opts, width_hint);
    if (opts.poly) {
        DepcheckOptions depOpts = opts.dep;
        std::optional<RangeFacts> rangeFacts;
        if (opts.ranges && opts.ranges->sound) {
            rangeFacts.emplace(prog, *opts.ranges, entry_index);
            depOpts.facts = &*rangeFacts;
        }
        const PolyRegion poly =
            analyzePoly(prog, entry_index, opts.config, depOpts);
        report.polyAnalyzed = true;
        report.polyUnbounded = poly.validity.structuralUnbounded;
        report.polySummary = poly.validity.summary;
        report.polyOkWidths = poly.validity.okWidths;
        for (const NConstraint &c : poly.validity.constraints)
            report.polyConstraints.push_back(c.render());
    }
    return report;
}

ProgramReport
verifyProgram(const Program &prog, const VerifyOptions &opts)
{
    ProgramReport report;
    for (const HintedCall &call : prog.hintedCalls()) {
        report.regions.push_back(
            verifyRegion(prog, call.target, opts, call.widthHint));
    }
    return report;
}

} // namespace liquid
