#include "verifier/verifier.hh"

#include <algorithm>
#include <sstream>

#include "verifier/cfg.hh"
#include "verifier/rules.hh"

namespace liquid
{

namespace
{

/** Ok-verdict coverage check: CFG-reachable but never analyzed. */
void
addCoverageDiags(const RegionCfg &cfg, const StaticOutcome &outcome,
                 RegionReport &report)
{
    std::vector<int> unseen;
    for (const int i : cfg.instructions()) {
        if (!std::binary_search(outcome.visited.begin(),
                                outcome.visited.end(), i))
            unseen.push_back(i);
    }
    if (unseen.empty())
        return;
    std::ostringstream os;
    os << unseen.size() << " instruction(s) reachable in the CFG were "
       << "never executed on the analyzed path (first at inst "
       << unseen.front()
       << "); the prediction holds only while those paths stay cold";
    Diagnostic d;
    d.severity = Severity::Warn;
    d.instIndex = unseen.front();
    d.message = os.str();
    report.diags.push_back(std::move(d));
}

} // namespace

RegionReport
verifyRegion(const Program &prog, int entry_index,
             const VerifyOptions &opts, unsigned width_hint)
{
    RegionReport report;
    report.entryIndex = entry_index;
    report.entryLabel = prog.labelAt(entry_index);
    report.requestedWidth = opts.config.simdWidth;
    report.widthHint = width_hint;

    const RegionCfg cfg = RegionCfg::build(prog, entry_index);
    report.blockCount = static_cast<unsigned>(cfg.blocks().size());
    report.loopCount = static_cast<unsigned>(cfg.loops().size());

    if (cfg.fallsOffEnd()) {
        Diagnostic d;
        d.severity = Severity::Warn;
        d.message = "a reachable path runs past the end of the "
                    "program text";
        report.diags.push_back(std::move(d));
    }

    // Mirror of Translator::onCall width binding.
    unsigned bind = opts.config.simdWidth;
    if (width_hint != 0)
        bind = std::min(bind, width_hint);
    if (bind < 2) {
        report.verdict = Severity::Warn;
        Diagnostic d;
        d.severity = Severity::Warn;
        d.instIndex = entry_index;
        d.message = "effective width below 2: the translator never "
                    "captures this region";
        report.diags.push_back(std::move(d));
        return report;
    }

    bool first_attempt = true;
    for (; bind >= 2; bind /= 2) {
        const StaticOutcome outcome =
            analyzeRegion(prog, entry_index, opts.config, bind);
        report.analyzedInsts = outcome.analyzedInsts;

        if (outcome.verdict == Severity::Ok) {
            report.verdict = Severity::Ok;
            report.predictedWidth = bind;
            report.predictedUcode = outcome.ucodeInsts;
            report.predictedCvecs = outcome.cvecs;
            Diagnostic d;
            d.severity = Severity::Ok;
            d.instIndex = entry_index;
            std::ostringstream os;
            os << "translation commits at width " << bind << " ("
               << outcome.ucodeInsts << " microcode insts, "
               << outcome.loopsVerified << " verified loop(s))";
            d.message = os.str();
            report.diags.push_back(std::move(d));
            addCoverageDiags(cfg, outcome, report);
            return report;
        }

        if (outcome.verdict == Severity::Warn) {
            report.verdict = Severity::Warn;
            Diagnostic d;
            d.severity = Severity::Warn;
            d.instIndex = outcome.reasonIndex;
            d.message = outcome.warnCondition;
            report.diags.push_back(std::move(d));
            return report;
        }

        // Error at this width.
        if (first_attempt) {
            // The widest attempt's reason is the headline: it is what
            // a single translateOffline() call at full width reports.
            report.verdict = Severity::Error;
            report.reason = outcome.reason;
            first_attempt = false;
        }
        Diagnostic d;
        d.severity = Severity::Error;
        d.reason = outcome.reason;
        d.instIndex = outcome.reasonIndex;
        std::ostringstream os;
        os << "translation aborts at width " << bind << ": "
           << abortReasonName(outcome.reason) << " ("
           << reasonClassName(abortReasonClass(outcome.reason))
           << " check)";
        d.message = os.str();
        report.diags.push_back(std::move(d));

        if (!opts.widthFallback ||
            !abortIsWidthDependent(outcome.reason))
            return report;
    }
    return report;
}

ProgramReport
verifyProgram(const Program &prog, const VerifyOptions &opts)
{
    ProgramReport report;
    for (const HintedCall &call : prog.hintedCalls()) {
        report.regions.push_back(
            verifyRegion(prog, call.target, opts, call.widthHint));
    }
    return report;
}

} // namespace liquid
