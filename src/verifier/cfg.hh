/**
 * @file
 * Control-flow graph over one outlined region, reconstructed purely
 * from the program text (no execution).
 *
 * The region is everything reachable from the hinted bl target by
 * following fallthrough edges and branch targets, terminated by ret or
 * halt. A bl inside the region is kept as a fallthrough edge (the call
 * returns) but recorded so the rule checkers can flag it. Natural
 * loops are found from DFS back edges; the translator only accepts
 * single-block do-while loops, so the CFG's loop set is what the
 * dataflow pass walks and what the diagnostics describe.
 */

#ifndef LIQUID_VERIFIER_CFG_HH
#define LIQUID_VERIFIER_CFG_HH

#include <vector>

#include "asm/program.hh"

namespace liquid
{

/** One basic block: instructions [first, last], in program order. */
struct BasicBlock
{
    int first = -1;
    int last = -1;
    std::vector<int> succs;   ///< successor block ids
    std::vector<int> preds;   ///< predecessor block ids
};

/** A natural loop, identified by its back edge. */
struct CfgLoop
{
    int headBlock = -1;    ///< loop entry block
    int latchBlock = -1;   ///< block whose terminator is the back edge
    int backedgeIndex = -1;  ///< instruction index of the back edge
};

/** The reconstructed CFG of one region. */
class RegionCfg
{
  public:
    /** Build the CFG for the region entered at @p entry_index. */
    static RegionCfg build(const Program &prog, int entry_index);

    int entryIndex() const { return entry_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    const std::vector<CfgLoop> &loops() const { return loops_; }

    /** Reachable instruction indices, ascending. */
    const std::vector<int> &instructions() const { return insts_; }

    bool contains(int index) const;

    /** Block containing instruction @p index; -1 if unreachable. */
    int blockOf(int index) const;

    /** Indices of conditional branches (B with cond != AL). */
    const std::vector<int> &condBranches() const { return condBranches_; }

    /** Indices of bl instructions inside the region. */
    const std::vector<int> &calls() const { return calls_; }

    /** True if some reachable path runs past the last instruction. */
    bool fallsOffEnd() const { return fallsOffEnd_; }

  private:
    int entry_ = -1;
    std::vector<int> insts_;
    std::vector<BasicBlock> blocks_;
    std::vector<CfgLoop> loops_;
    std::vector<int> condBranches_;
    std::vector<int> calls_;
    bool fallsOffEnd_ = false;
};

} // namespace liquid

#endif // LIQUID_VERIFIER_CFG_HH
