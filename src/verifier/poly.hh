/**
 * @file
 * Width-polymorphic static verification ("liquid-poly").
 *
 * The per-width pipeline (rules.cc Table-1 conformance, depcheck's
 * group/order-flip distance proofs) asks "is width N safe?" once per
 * ladder entry. This pass asks the question once, symbolically: one
 * width-independent recording walk captures every width-dependent
 * check as data (stream lanes, trip counts, lane counts, permutation
 * shapes, the dependence-pair trace), and the verdict becomes a
 * predicate on N — a validity set expressed as interval × congruence
 * constraints over the symbolic width, e.g. "Safe for all N with
 * N | 64" or "Error for N >= 8: depMiscompile, distance 4".
 *
 * Exactness contract: instantiate(N) replays the recorded checks in
 * program order and must reproduce verifyRegion()/analyzeDeps() at
 * width N bit-for-bit — verdict, AbortReason, DepReason, diagnostic
 * instruction index and the full DepPair. diffRegion() checks that
 * differentially; the `Sabotage` mutations seed bugs into the
 * constraint evaluator that the differential gate must catch.
 *
 * The constraint rendering reuses the interval × congruence domain
 * from the range analysis (range.hh) for the N-lattice, and symexec's
 * Lane-mode address algebra (TermPool::affineDiff over parametric
 * address polynomials) to derive symbolic carried distances.
 */

#ifndef LIQUID_VERIFIER_POLY_HH
#define LIQUID_VERIFIER_POLY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "translator/translator.hh"
#include "verifier/depcheck.hh"
#include "verifier/diagnostics.hh"
#include "verifier/range.hh"
#include "verifier/rules.hh"

namespace liquid
{

/**
 * Seeded bugs in the width-constraint evaluator, one bit each, for
 * the --sabotage self-test. Every mutation must make instantiate()
 * diverge from the concrete verifier on at least one kernel/width.
 */
enum class PolySabotage : unsigned
{
    None = 0,
    /** Same-group test degraded to `distance < N`. */
    GroupCollide = 1u << 0,
    /** Order-flip filter dropped: in-order pairs flagged too. */
    FlipIgnore = 1u << 1,
    /** Trip divisibility (`N | T`) dropped, keeping only `T >= N`. */
    TripDivisor = 1u << 2,
    /** Trip lower bound off by one: `T == N` wrongly aborts. */
    TripEqual = 1u << 3,
    /** Stream compare against lane 0 instead of lane `e mod N`. */
    StreamPeriod = 1u << 4,
};

constexpr unsigned polySabotageCount = 5;
const char *polySabotageName(PolySabotage s);

/** What instantiate() predicts verifyRegion would report at width N
 *  (widthFallback/prove/ranges off, hint 0). */
struct PolyWidthOutcome
{
    Severity verdict = Severity::Ok;
    AbortReason reason = AbortReason::None;  ///< Error verdicts
    /** Instruction index of the predicted Error/Warn diagnostic. */
    int instIndex = -1;
    bool depMiscompile = false;
    /** Dependence verdict at N; meaningful when the rules walk is Ok
     *  (and for conservative MemoryDependence aborts). */
    bool depRan = false;
    WidthVerdict::Kind depKind = WidthVerdict::Kind::Unknown;
    DepReason depReason = DepReason::None;
    DepPair pair;  ///< valid when depKind == Unsafe
    std::string note;  ///< Warn condition / human context
};

/**
 * One constraint on the symbolic width, in the range domain's
 * interval × congruence lattice. `iv` bounds N; `cg` constrains its
 * residue (cg.mod == 0 means no congruence). `why` names the source
 * check ("trip count", "stream period", "carried distance", ...).
 */
struct NConstraint
{
    Interval iv = Interval::top();
    Congruence cg = Congruence::top();
    std::string why;
    /** Render as "N <= 16", "2 | N", "N in [2, 8]" plus the source. */
    std::string render() const;
};

/**
 * The validity set: for which N does the region verify?
 *
 * Exact part: `okWidths` lists every Ok width in [2, horizon], and
 * `tail` is the (constant) outcome shared by all N > horizon — every
 * recorded check saturates beyond the horizon, so one probe settles
 * the whole tail.
 *
 * Structural part: with the observed trip data factored out (the trip
 * count is an artifact of this run's input size, not of the region's
 * shape), `structuralUnbounded` says the region verifies for
 * arbitrarily large N subject to `constraints` — the "verify once,
 * run at any length" claim ROADMAP item 3 needs.
 */
struct PolyValidity
{
    unsigned horizon = 0;
    std::vector<unsigned> okWidths;  ///< exact Ok widths in [2,horizon]
    bool tailExact = false;  ///< horizon covered all observed data
    PolyWidthOutcome tail;   ///< outcome for every N > horizon
    bool structuralUnbounded = false;
    std::vector<NConstraint> constraints;
    std::string summary;  ///< one line, e.g. "Safe for all N with N | 64"

    bool okAt(unsigned n) const;
};

/** The width-polymorphic analysis of one region. */
class PolyRegion
{
  public:
    int entryIndex = -1;
    std::string entryLabel;

    /** Width-independent terminal outcome of the recording walk. */
    StaticOutcome terminal;
    /** Dependence trace (width-independent walk + classification). */
    PolyDeps deps;
    PolyValidity validity;

    /**
     * Replay the recorded checks at concrete width @p n, with the
     * seeded bugs in @p sabotage (bitwise-or of PolySabotage) applied
     * to the evaluator. sabotage == 0 is the honest semantics.
     */
    PolyWidthOutcome instantiate(unsigned n, unsigned sabotage = 0) const;

    // -- recording storage (filled by analyzePoly) --------------------
    struct Stream
    {
        std::vector<Word> values;  ///< lane 0 (seed) + pushes, in order
    };
    struct Event
    {
        enum class Kind : std::uint8_t
        {
            StreamLane,  ///< constant-pool load lane check
            TripCount,   ///< loop finalization trip check
            Lanes,       ///< patch lane-completeness check
            Perm,        ///< permutation-shape (CAM) check
        };
        Kind kind = Kind::StreamLane;
        int instIndex = -1;
        int stream = -1;       ///< StreamLane / Lanes / Perm
        std::uint32_t elem = 0;    ///< StreamLane: lane index in its loop
        Word value = 0;            ///< StreamLane
        unsigned iters = 0;        ///< TripCount
        std::uint32_t observed = 0;  ///< Lanes: lanes captured
        bool isStore = false;      ///< Perm: store side (inverse kind)
    };
    std::vector<Stream> streams;
    std::vector<Event> events;
    PermRepertoire permRepertoire{};
};

/**
 * Analyze the region entered at @p entry_index once, width-free.
 * Fills the recording, computes the validity set and its rendering.
 */
PolyRegion analyzePoly(const Program &prog, int entry_index,
                       const TranslatorConfig &config,
                       const DepcheckOptions &depOpts = {});

/** One field disagreement between poly-at-N and the concrete verdict. */
struct PolyMismatch
{
    unsigned width = 0;
    std::string field;
    std::string expect;  ///< concrete verifier's value
    std::string got;     ///< instantiate()'s value
};

/** Differential self-check of one region over the width ladder. */
struct PolyDiff
{
    int entryIndex = -1;
    std::string entryLabel;
    std::vector<PolyMismatch> mismatches;
    bool ok() const { return mismatches.empty(); }
};

/**
 * Instantiate the symbolic verdict at every ladder width and compare
 * bit-for-bit against verifyRegion()/depcheck at the same width
 * (fallback/prover/ranges off). @p sabotage seeds evaluator bugs; the
 * gate passes when sabotage == 0 diffs clean and each mutation diffs
 * dirty somewhere.
 */
PolyDiff diffRegion(const Program &prog, int entry_index,
                    const TranslatorConfig &config,
                    unsigned sabotage = 0);

/** diffRegion over every hinted region of the program. */
std::vector<PolyDiff> diffProgram(const Program &prog,
                                  const TranslatorConfig &config,
                                  unsigned sabotage = 0);

} // namespace liquid

#endif // LIQUID_VERIFIER_POLY_HH
