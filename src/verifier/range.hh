/**
 * @file
 * liquid-range: interprocedural value-range, alignment and trip-count
 * analysis over whole binaries.
 *
 * The domain is a reduced product of two abstractions per register or
 * memory cell:
 *
 *  - `Interval`  — a signed 64-bit range [lo, hi] (the ISA transfer
 *    functions clamp to the 32-bit value space; the domain itself is
 *    64-bit generic so the lattice laws are testable at the extremes);
 *  - `Congruence` — value ≡ rem (mod mod), i.e. stride/alignment
 *    facts. `mod == 0` encodes a constant, `mod == 1` top. ISA-level
 *    transfers normalize moduli to powers of two so the facts survive
 *    32-bit wraparound (m | 2^32).
 *
 * The analysis runs forward over every function's RegionCfg on the
 * shared fixpoint engine (`fixpoint.hh`), with widening at loop heads
 * and a few narrowing sweeps, and iterates callee summaries (entry
 * state = join over call sites, exit state = join over returns) to a
 * joint interprocedural fixpoint — the same discovery and round
 * pattern as `solveProgramLiveness`.
 *
 * Consumers:
 *  - the verifier seeds `AbsMachine` walks (rule mirror + depcheck)
 *    with proven-constant entry registers and memory cells, turning
 *    runtime-dependent Warns into concrete verdicts;
 *  - depcheck Unknowns are discharged by footprint interval
 *    disjointness or congruence separation (`dischargeDeps`);
 *  - liquid-scan reads loop trip-count bounds and access alignment;
 *  - liquid-proof shrinks enumeration domains with cell facts.
 *
 * Soundness is guarded by a differential oracle (`RangeObserver`): a
 * retire-bus recorder asserting that every static interval contains
 * every dynamically observed value.
 */

#ifndef LIQUID_VERIFIER_RANGE_HH
#define LIQUID_VERIFIER_RANGE_HH

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "cpu/core.hh"
#include "verifier/dataflow.hh"
#include "verifier/depcheck.hh"
#include "verifier/liveness.hh"

namespace liquid
{

/** Signed 64-bit interval [lo, hi]; lo > hi encodes bottom (empty). */
struct Interval
{
    std::int64_t lo = INT64_MIN;
    std::int64_t hi = INT64_MAX;

    static Interval top() { return {}; }
    static Interval bottom() { return {1, 0}; }
    static Interval of(std::int64_t v) { return {v, v}; }
    static Interval make(std::int64_t lo, std::int64_t hi)
    {
        return {lo, hi};
    }

    bool empty() const { return lo > hi; }
    bool isTop() const { return lo == INT64_MIN && hi == INT64_MAX; }
    bool singleton() const { return lo == hi; }
    bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
    bool
    containsAll(const Interval &o) const
    {
        return o.empty() || (lo <= o.lo && o.hi <= hi);
    }

    bool
    operator==(const Interval &o) const
    {
        if (empty() && o.empty())
            return true;
        return lo == o.lo && hi == o.hi;
    }

    /** Convex hull (lattice join). */
    Interval join(const Interval &o) const;
    /** Intersection (lattice meet). */
    Interval meet(const Interval &o) const;
    /** Standard widening: escaping bounds jump to the extremes. */
    Interval widen(const Interval &next) const;
    /** Standard narrowing: infinite bounds adopt the refined ones. */
    Interval narrow(const Interval &next) const;

    // Saturating abstract arithmetic (exact up to int64 saturation).
    Interval add(const Interval &o) const;
    Interval sub(const Interval &o) const;
    Interval neg() const;
    Interval mul(const Interval &o) const;

    std::string str() const;
};

/**
 * Congruence x ≡ rem (mod mod). `mod == 0` is the constant `rem`
 * (rem may be any int64); `mod == 1` is top; `mod >= 2` keeps
 * rem ∈ [0, mod).
 */
struct Congruence
{
    std::uint64_t mod = 1;
    std::int64_t rem = 0;

    static Congruence top() { return {}; }
    static Congruence of(std::int64_t v) { return {0, v}; }
    static Congruence make(std::uint64_t mod, std::int64_t rem);

    bool isTop() const { return mod == 1; }
    bool isConst() const { return mod == 0; }
    bool contains(std::int64_t v) const;

    bool
    operator==(const Congruence &o) const
    {
        return mod == o.mod && rem == o.rem;
    }

    Congruence join(const Congruence &o) const;
    /** Over-approximate meet (always contains the intersection). */
    Congruence meet(const Congruence &o) const;

    Congruence add(const Congruence &o) const;
    Congruence sub(const Congruence &o) const;
    Congruence neg() const;
    Congruence mul(const Congruence &o) const;

    /**
     * Coarsen the modulus to its largest power-of-two divisor (capped
     * at 2^31) so the fact survives 32-bit wraparound; constants pass
     * through, non-power-of-two residues degrade toward top.
     */
    Congruence pow2() const;

    std::string str() const;
};

/** The reduced product element. */
struct RangeVal
{
    Interval iv;
    Congruence cg;

    static RangeVal top() { return {}; }
    static RangeVal bottom()
    {
        return {Interval::bottom(), Congruence::top()};
    }
    static RangeVal of(std::int64_t v)
    {
        return {Interval::of(v), Congruence::of(v)};
    }

    bool isBottom() const { return iv.empty(); }
    bool isTop() const { return iv.isTop() && cg.isTop(); }
    bool
    isConst(std::int64_t &v) const
    {
        if (iv.singleton() && !iv.empty()) {
            v = iv.lo;
            return true;
        }
        return false;
    }
    bool
    contains(std::int64_t v) const
    {
        return iv.contains(v) && cg.contains(v);
    }

    bool
    operator==(const RangeVal &o) const
    {
        return iv == o.iv && cg == o.cg;
    }

    /**
     * Reduction: propagate information between the two components
     * (tighten interval endpoints onto the congruence's residue class,
     * collapse singletons to constants). Idempotent.
     */
    RangeVal reduce() const;

    RangeVal join(const RangeVal &o) const;
    RangeVal meet(const RangeVal &o) const;
    RangeVal widen(const RangeVal &next) const;
    RangeVal narrow(const RangeVal &next) const;

    std::string str() const;
};

/** Sabotage mutations for the --sabotage self-test (bitmask). */
enum RangeSabotage : unsigned
{
    SabNone = 0,
    /** join() keeps only the second operand (path-drop). */
    SabUnsoundJoin = 1u << 0,
    /** 32-bit overflow clamps instead of widening to top. */
    SabWrapClamp = 1u << 1,
    /** Stores through unknown addresses skip the memory havoc. */
    SabStoreNoHavoc = 1u << 2,
    /** Branch refinement tightens one element too far. */
    SabEdgeTighten = 1u << 3,
};

/** One memory cell's abstract contents (exact address and size). */
struct CellFact
{
    unsigned size = 4;
    RangeVal val;
};

/**
 * Abstract machine state of the range analysis: one RangeVal per
 * architectural register (flat id) plus a written-cell map over the
 * initial data image. An absent cell means "never written on any
 * path" — its value is the image's. `memHavoc` poisons all cells
 * (a store through an unknown address, or an unknown callee).
 */
struct RangeState
{
    bool reachable = false;
    std::array<RangeVal, 4 * regsPerClass> regs;
    bool memHavoc = false;
    std::map<Addr, CellFact> cells;

    // Flag-refinement bookkeeping: the registers compared by the last
    // cmp, if they still hold the compared values. Lets CFG edges
    // tighten `r` after `cmp r, bound; blt ...`.
    int cmpLhsFlat = -1;
    int cmpRhsFlat = -1;
    Interval cmpLhs = Interval::top();
    Interval cmpRhs = Interval::top();

    static RangeState bottom() { return {}; }
    /** All registers and memory unknown (but reachable). */
    static RangeState everything();

    RangeVal regAt(RegId id) const;
    void setReg(RegId id, const RangeVal &v);

    /** Abstract load from [addr, addr+size) against image + cells. */
    RangeVal load(const Program &prog, Addr addr, unsigned size,
                  bool sign_extend) const;
    /** Abstract store; non-singleton spans weak-update or havoc. */
    void store(const Interval &addr, unsigned size, const RangeVal &v,
               unsigned sabotage = SabNone);
    void havocMemory();

    bool operator==(const RangeState &o) const;
    void joinWith(const RangeState &o, const Program &prog,
                  unsigned sabotage = SabNone);
    void widenWith(const RangeState &prev);
};

/** Per-instruction facts joined over all contexts that execute it. */
struct InstFacts
{
    bool hasVal = false;
    RangeVal val;       ///< result written to a scalar destination
    bool hasAddr = false;
    Interval addr = Interval::bottom();   ///< effective address range
    Congruence addrCg = Congruence::top();
};

/** Trip-count facts for one natural loop. */
struct LoopFacts
{
    int headIndex = -1;       ///< first instruction of the loop head
    Interval trip = Interval::top();  ///< iterations executed
    unsigned ivFlat = 0;      ///< counted induction register
    std::int64_t step = 0;    ///< per-iteration increment
    bool known = false;       ///< trip is a real (non-top) bound
};

struct RangeSolveOptions
{
    /** Interprocedural rounds; 0 = entries + 3 (liveness pattern). */
    unsigned maxRounds = 0;
    /** Decreasing sweeps after the widened intraprocedural fixpoint. */
    unsigned narrowSweeps = 2;
    /** Seeded unsoundness for the sabotage self-test. */
    unsigned sabotage = SabNone;
};

/** The whole-binary solution. */
struct ProgramRanges
{
    struct Fn
    {
        RangeState entry;
        RangeState exit;
        std::map<int, LoopFacts> loops;  ///< keyed by head block index
        unsigned callSites = 0;
        bool converged = true;
    };

    std::map<int, Fn> fns;     ///< keyed by entry instruction index
    std::set<int> entries;
    /** Per-instruction facts, joined across every calling context. */
    std::map<int, InstFacts> facts;
    /** False when the joint fixpoint failed; all facts must read top. */
    bool sound = true;
    unsigned rounds = 0;

    const Fn *fnAt(int entry) const;
    const InstFacts *factsAt(int index) const;
    /** Tightest known trip bound over the region's loops (top if none). */
    Interval tripBound(int entry) const;
    /** Power-of-two byte alignment proven for a memory instruction. */
    std::uint64_t accessAlign(int index) const;
};

/** Solve value ranges for every function in the binary. */
ProgramRanges solveProgramRanges(const Program &prog,
                                 const RangeSolveOptions &opt = {});

/**
 * Adapter handing a region's proven entry facts to `AbsMachine`: the
 * rule-mirror and depcheck walks resolve entry registers and
 * writable-memory loads the analysis pinned to constants.
 */
class RangeFacts : public EntryFacts
{
  public:
    RangeFacts(const Program &prog, const ProgramRanges &ranges,
               int entry);

    bool entryReg(RegId reg, Word &value,
                  std::string &fact) const override;
    bool readCell(Addr addr, unsigned size, bool sign_extend,
                  Word &value, std::string &fact) const override;

  private:
    const Program &prog_;
    const ProgramRanges &ranges_;
    const ProgramRanges::Fn *fn_;
};

/**
 * Try to discharge depcheck `Unknown` width verdicts with range
 * facts: pairwise footprint interval disjointness or congruence
 * separation proves the absence of carried dependences independent of
 * the pair-test budget. Returns the number of width verdicts flipped
 * to Safe (each annotated with the proof and `viaRange`).
 */
unsigned dischargeDeps(const Program &prog, int entry,
                       const ProgramRanges &ranges,
                       DepcheckResult &dep);

/**
 * Differential soundness oracle: attach to a scalar-mode Core and
 * assert every retired value/address lies inside the static fact.
 */
class RangeObserver : public RetireSink
{
  public:
    RangeObserver(const Program &prog, const ProgramRanges &ranges)
        : prog_(prog), ranges_(ranges)
    {
    }

    void onRetire(const RetireInfo &info, Cycles now) override;
    void onCall(Addr, bool, unsigned, Cycles) override {}
    void onReturn(Cycles) override {}
    void onInterrupt(Cycles) override {}

    unsigned checkedRetires() const { return checked_; }
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

  private:
    const Program &prog_;
    const ProgramRanges &ranges_;
    unsigned checked_ = 0;
    std::vector<std::string> violations_;
};

} // namespace liquid

#endif // LIQUID_VERIFIER_RANGE_HH
