#include "verifier/symexec.hh"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/logging.hh"
#include "cpu/exec.hh"
#include "isa/perm.hh"

namespace liquid::sym
{

namespace
{

/** Monomial: sorted atom term ids. Empty = the constant monomial. */
using Mono = std::vector<unsigned>;
/** Multilinear form over Z/2^32: monomial -> coefficient (nonzero). */
using LinForm = std::map<Mono, Word>;

/** Canonicalization budget: beyond this a term is left structural. */
constexpr std::size_t maxLinMonomials = 64;
constexpr std::size_t maxLinDegree = 4;

bool
isLinOp(Opcode op)
{
    return op == Opcode::Add || op == Opcode::Sub || op == Opcode::Rsb ||
           op == Opcode::Mul;
}

bool
isCommutative(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Orr:
      case Opcode::Eor:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::Qadd:
        return true;
      default:
        return false;
    }
}

void
linAcc(LinForm &into, const Mono &m, Word coeff)
{
    auto it = into.find(m);
    if (it == into.end()) {
        if (coeff != 0)
            into.emplace(m, coeff);
        return;
    }
    it->second += coeff;
    if (it->second == 0)
        into.erase(it);
}

std::optional<LinForm>
linCombine(const LinForm &a, const LinForm &b, Opcode op)
{
    LinForm out;
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Rsb: {
        const LinForm &pos = op == Opcode::Rsb ? b : a;
        const LinForm &other = op == Opcode::Rsb ? a : b;
        out = pos;
        for (const auto &[m, c] : other) {
            linAcc(out, m,
                   op == Opcode::Add ? c : static_cast<Word>(0) - c);
        }
        break;
      }
      case Opcode::Mul: {
        if (a.size() * b.size() > maxLinMonomials)
            return std::nullopt;
        for (const auto &[ma, ca] : a) {
            for (const auto &[mb, cb] : b) {
                if (ma.size() + mb.size() > maxLinDegree)
                    return std::nullopt;
                Mono m;
                m.reserve(ma.size() + mb.size());
                std::merge(ma.begin(), ma.end(), mb.begin(), mb.end(),
                           std::back_inserter(m));
                linAcc(out, m, ca * cb);
            }
        }
        break;
      }
      default:
        return std::nullopt;
    }
    if (out.size() > maxLinMonomials)
        return std::nullopt;
    return out;
}

/** Serialized linform, usable as an ordered map key. */
std::vector<std::uint64_t>
linKey(const LinForm &lf)
{
    std::vector<std::uint64_t> key;
    key.reserve(lf.size() * 4);
    for (const auto &[m, c] : lf) {
        key.push_back(m.size());
        for (const unsigned a : m)
            key.push_back(a);
        key.push_back(c);
    }
    return key;
}

struct InternKey
{
    TermKind kind;
    Opcode op;
    bool isFloat;
    Cond cond;
    unsigned bits;
    bool isSigned;
    Word konst;
    unsigned sym;
    unsigned size;
    std::array<unsigned, 3> argIds;
    unsigned nargs;

    bool
    operator==(const InternKey &o) const
    {
        return kind == o.kind && op == o.op && isFloat == o.isFloat &&
               cond == o.cond && bits == o.bits &&
               isSigned == o.isSigned && konst == o.konst &&
               sym == o.sym && size == o.size && argIds == o.argIds &&
               nargs == o.nargs;
    }
};

struct InternKeyHash
{
    std::size_t
    operator()(const InternKey &k) const
    {
        std::uint64_t h = 1469598103934665603ull;
        auto mix = [&h](std::uint64_t v) {
            h ^= v;
            h *= 1099511628211ull;
        };
        mix(static_cast<std::uint64_t>(k.kind));
        mix(static_cast<std::uint64_t>(k.op));
        mix(k.isFloat);
        mix(static_cast<std::uint64_t>(k.cond));
        mix(k.bits);
        mix(k.isSigned);
        mix(k.konst);
        mix(k.sym);
        mix(k.size);
        mix(k.nargs);
        for (unsigned i = 0; i < k.nargs; ++i)
            mix(k.argIds[i]);
        return static_cast<std::size_t>(h);
    }
};

InternKey
keyOf(const Term &t)
{
    InternKey k{};
    k.kind = t.kind;
    k.op = t.op;
    k.isFloat = t.isFloat;
    k.cond = t.cond;
    k.bits = t.bits;
    k.isSigned = t.isSigned;
    k.konst = t.konst;
    k.sym = t.sym;
    k.size = t.size;
    k.nargs = t.nargs;
    k.argIds = {{0, 0, 0}};
    for (unsigned i = 0; i < t.nargs; ++i)
        k.argIds[i] = t.args[i]->id;
    return k;
}

Word
extend(Word value, unsigned bits, bool is_signed)
{
    if (bits >= 32)
        return value;
    const Word mask = (Word{1} << bits) - 1;
    Word low = value & mask;
    if (is_signed && (low >> (bits - 1)) & 1u)
        low |= ~mask;
    return low;
}

} // namespace

bool
condHoldsSign(Cond cond, int sign)
{
    switch (cond) {
      case Cond::AL: return true;
      case Cond::EQ: return sign == 0;
      case Cond::NE: return sign != 0;
      case Cond::LT: return sign < 0;
      case Cond::LE: return sign <= 0;
      case Cond::GT: return sign > 0;
      case Cond::GE: return sign >= 0;
    }
    return false;
}

struct TermPool::Impl
{
    std::unordered_map<InternKey, TermRef, InternKeyHash> interned;
    std::map<std::tuple<Addr, unsigned, bool>, TermRef> memSyms;
    std::map<unsigned, TermRef> regSyms; ///< by flat id
    TermRef cmpInit = nullptr;
    std::map<std::string, TermRef> params;
    std::map<std::string, TermRef> poisons;
    /** Lazily derived polynomial of each integer term; empty = atom. */
    std::unordered_map<TermRef, std::optional<LinForm>> linCache;
    /** Canonical term for each polynomial already materialized. */
    std::map<std::vector<std::uint64_t>, TermRef> linTerms;
    /** Scratch for eval(): per-term value, validated by epoch. */
    std::vector<Word> evalVals;
    std::vector<std::uint32_t> evalEpoch;
    std::uint32_t epoch = 0;

    const LinForm *linOf(TermRef t);
};

const LinForm *
TermPool::Impl::linOf(TermRef t)
{
    auto it = linCache.find(t);
    if (it != linCache.end())
        return it->second ? &*it->second : nullptr;

    std::optional<LinForm> lf;
    if (t->kind == TermKind::Const) {
        LinForm f;
        if (t->konst != 0)
            f.emplace(Mono{}, t->konst);
        lf = std::move(f);
    } else if (t->kind == TermKind::Bin && !t->isFloat &&
               isLinOp(t->op)) {
        const LinForm *la = linOf(t->args[0]);
        const LinForm *lb = linOf(t->args[1]);
        LinForm atomA, atomB;
        if (!la) {
            atomA.emplace(Mono{t->args[0]->id}, 1u);
            la = &atomA;
        }
        if (!lb) {
            atomB.emplace(Mono{t->args[1]->id}, 1u);
            lb = &atomB;
        }
        lf = linCombine(*la, *lb, t->op);
    }
    // Everything else — and overflowing polynomials — is an atom;
    // callers wrap the term itself as the monomial.
    auto [pos, inserted] = linCache.emplace(t, std::move(lf));
    (void)inserted;
    return pos->second ? &*pos->second : nullptr;
}

TermPool::TermPool() : impl_(std::make_unique<Impl>()) {}
TermPool::~TermPool() = default;

TermRef
TermPool::intern(Term t)
{
    t.poisoned = false;
    for (unsigned i = 0; i < t.nargs; ++i)
        t.poisoned = t.poisoned || t.args[i]->poisoned;
    if (t.kind == TermKind::Sym)
        t.poisoned = decls_[t.sym].kind == SymDecl::Kind::Poison;

    const InternKey key = keyOf(t);
    auto it = impl_->interned.find(key);
    if (it != impl_->interned.end())
        return it->second;
    t.id = static_cast<unsigned>(terms_.size());
    terms_.push_back(std::make_unique<Term>(t));
    TermRef ref = terms_.back().get();
    impl_->interned.emplace(key, ref);
    return ref;
}

TermRef
TermPool::konst(Word value)
{
    Term t;
    t.kind = TermKind::Const;
    t.konst = value;
    return intern(t);
}

TermRef
TermPool::symTerm(SymDecl decl)
{
    decls_.push_back(std::move(decl));
    Term t;
    t.kind = TermKind::Sym;
    t.sym = static_cast<unsigned>(decls_.size() - 1);
    return intern(t);
}

TermRef
TermPool::memSym(Addr addr, unsigned size, bool is_signed)
{
    const auto key = std::make_tuple(addr, size, is_signed);
    auto it = impl_->memSyms.find(key);
    if (it != impl_->memSyms.end())
        return it->second;
    SymDecl d;
    d.kind = SymDecl::Kind::Mem;
    d.addr = addr;
    d.size = size;
    d.isSigned = is_signed;
    std::ostringstream os;
    os << "mem" << size * 8 << (is_signed ? "s" : "u") << "@0x"
       << std::hex << addr;
    d.name = os.str();
    TermRef t = symTerm(std::move(d));
    impl_->memSyms.emplace(key, t);
    return t;
}

TermRef
TermPool::regSym(RegId reg)
{
    auto it = impl_->regSyms.find(reg.flat());
    if (it != impl_->regSyms.end())
        return it->second;
    SymDecl d;
    d.kind = SymDecl::Kind::Reg;
    d.reg = reg;
    d.name = regName(reg) + "@entry";
    TermRef t = symTerm(std::move(d));
    impl_->regSyms.emplace(reg.flat(), t);
    return t;
}

TermRef
TermPool::cmpInitSym()
{
    if (impl_->cmpInit)
        return impl_->cmpInit;
    SymDecl d;
    d.kind = SymDecl::Kind::CmpInit;
    d.name = "flags@entry";
    impl_->cmpInit = symTerm(std::move(d));
    return impl_->cmpInit;
}

TermRef
TermPool::param(const std::string &name)
{
    auto it = impl_->params.find(name);
    if (it != impl_->params.end())
        return it->second;
    SymDecl d;
    d.kind = SymDecl::Kind::Param;
    d.name = name;
    TermRef t = symTerm(std::move(d));
    impl_->params.emplace(name, t);
    return t;
}

TermRef
TermPool::poison(const std::string &name)
{
    auto it = impl_->poisons.find(name);
    if (it != impl_->poisons.end())
        return it->second;
    SymDecl d;
    d.kind = SymDecl::Kind::Poison;
    d.name = "poison:" + name;
    TermRef t = symTerm(std::move(d));
    impl_->poisons.emplace(name, t);
    return t;
}

TermRef
TermPool::rawBin(Opcode op, TermRef a, TermRef b)
{
    Term t;
    t.kind = TermKind::Bin;
    t.op = op;
    t.isFloat = false;
    t.args[0] = a;
    t.args[1] = b;
    t.nargs = 2;
    return intern(t);
}

TermRef
TermPool::bin(Opcode op, TermRef a, TermRef b, bool is_float)
{
    if (a->isConst() && b->isConst())
        return konst(evalScalarOp(op, a->konst, b->konst, is_float));

    if (!is_float) {
        // --- integer polynomial canonicalization -----------------------
        if (isLinOp(op)) {
            const LinForm *la = impl_->linOf(a);
            const LinForm *lb = impl_->linOf(b);
            LinForm atomA, atomB;
            if (!la) {
                atomA.emplace(Mono{a->id}, 1u);
                la = &atomA;
            }
            if (!lb) {
                atomB.emplace(Mono{b->id}, 1u);
                lb = &atomB;
            }
            if (auto lf = linCombine(*la, *lb, op)) {
                // Single-term fast paths.
                if (lf->empty())
                    return konst(0);
                if (lf->size() == 1) {
                    const auto &[m, c] = *lf->begin();
                    if (m.empty())
                        return konst(c);
                    if (m.size() == 1 && c == 1)
                        return terms_[m[0]].get();
                }
                const auto key = linKey(*lf);
                auto it = impl_->linTerms.find(key);
                if (it != impl_->linTerms.end())
                    return it->second;
                // Materialize the canonical sum-of-monomials term.
                TermRef sum = nullptr;
                Word constTerm = 0;
                for (const auto &[m, c] : *lf) {
                    if (m.empty()) {
                        constTerm = c;
                        continue;
                    }
                    TermRef prod = terms_[m[0]].get();
                    for (std::size_t i = 1; i < m.size(); ++i)
                        prod = rawBin(Opcode::Mul, prod,
                                      terms_[m[i]].get());
                    if (c != 1)
                        prod = rawBin(Opcode::Mul, prod, konst(c));
                    sum = sum ? rawBin(Opcode::Add, sum, prod) : prod;
                }
                if (constTerm != 0) {
                    sum = sum ? rawBin(Opcode::Add, sum, konst(constTerm))
                              : konst(constTerm);
                }
                if (!sum)
                    sum = konst(0);
                impl_->linTerms.emplace(key, sum);
                impl_->linCache.insert_or_assign(sum, *lf);
                return sum;
            }
            // Polynomial overflow: keep structural, but still order
            // commutative operands canonically.
        }

        // --- identities / absorption over the bitwise subset -----------
        switch (op) {
          case Opcode::And:
            if (a == b)
                return a;
            if (b->isConst() && b->konst == 0)
                return konst(0);
            if (b->isConst() && b->konst == ~Word{0})
                return a;
            if (a->isConst() && a->konst == 0)
                return konst(0);
            if (a->isConst() && a->konst == ~Word{0})
                return b;
            break;
          case Opcode::Orr:
            if (a == b)
                return a;
            if (b->isConst() && b->konst == 0)
                return a;
            if (b->isConst() && b->konst == ~Word{0})
                return konst(~Word{0});
            if (a->isConst() && a->konst == 0)
                return b;
            if (a->isConst() && a->konst == ~Word{0})
                return konst(~Word{0});
            break;
          case Opcode::Eor:
            if (a == b)
                return konst(0);
            if (b->isConst() && b->konst == 0)
                return a;
            if (a->isConst() && a->konst == 0)
                return b;
            break;
          case Opcode::Bic:
            if (a == b)
                return konst(0);
            if (b->isConst() && b->konst == 0)
                return a;
            if (b->isConst() && b->konst == ~Word{0})
                return konst(0);
            if (a->isConst() && a->konst == 0)
                return konst(0);
            break;
          case Opcode::Lsl:
          case Opcode::Lsr:
            if (b->isConst() && b->konst == 0)
                return a;
            if (b->isConst() && b->konst >= 32)
                return konst(0);
            break;
          case Opcode::Asr:
            if (b->isConst() && b->konst == 0)
                return a;
            break;
          case Opcode::Min:
          case Opcode::Max:
            if (a == b)
                return a;
            break;
          default:
            break;
        }

        if (isCommutative(op) && b->id < a->id)
            std::swap(a, b);
    }

    Term t;
    t.kind = TermKind::Bin;
    t.op = op;
    t.isFloat = is_float;
    t.args[0] = a;
    t.args[1] = b;
    t.nargs = 2;
    return intern(t);
}

TermRef
TermPool::cmp(TermRef a, TermRef b, bool is_float)
{
    if (a->isConst() && b->isConst()) {
        return konst(static_cast<Word>(
            static_cast<SWord>(evalCompare(a->konst, b->konst, is_float))));
    }
    if (a == b && !is_float)
        return konst(0);
    Term t;
    t.kind = TermKind::Cmp;
    t.isFloat = is_float;
    t.args[0] = a;
    t.args[1] = b;
    t.nargs = 2;
    return intern(t);
}

TermRef
TermPool::sel(Cond cond, TermRef sign, TermRef then_t, TermRef else_t)
{
    if (cond == Cond::AL)
        return then_t;
    if (then_t == else_t)
        return then_t;
    if (sign->isConst()) {
        return condHoldsSign(cond, static_cast<int>(
                                       static_cast<SWord>(sign->konst)))
                   ? then_t
                   : else_t;
    }
    Term t;
    t.kind = TermKind::Sel;
    t.cond = cond;
    t.args[0] = sign;
    t.args[1] = then_t;
    t.args[2] = else_t;
    t.nargs = 3;
    return intern(t);
}

TermRef
TermPool::ext(unsigned bits, bool is_signed, TermRef value)
{
    if (bits >= 32)
        return value;
    if (value->isConst())
        return konst(extend(value->konst, bits, is_signed));
    // A narrower extension is unchanged by this one when its result
    // provably re-extends to itself: strictly narrower with a
    // compatible sign (a zero-extended value has a clear sign bit at
    // any wider position; a sign-extended value reproduces under a
    // wider sign extension), or the identical extension repeated.
    // Equal widths with flipped signs do NOT fold: sext8(zext8(x))
    // differs from zext8(x) whenever bit 7 is set.
    if (value->kind == TermKind::Ext &&
        (value->bits < bits ? (!value->isSigned || is_signed)
                            : (value->bits == bits &&
                               value->isSigned == is_signed))) {
        return value;
    }
    if (value->kind == TermKind::Sym) {
        const SymDecl &d = decls_[value->sym];
        if (d.kind == SymDecl::Kind::Mem &&
            (d.size * 8 < bits ? (!d.isSigned || is_signed)
                               : (d.size * 8 == bits &&
                                  d.isSigned == is_signed))) {
            return value; // element value already fits
        }
    }
    Term t;
    t.kind = TermKind::Ext;
    t.bits = bits;
    t.isSigned = is_signed;
    t.args[0] = value;
    t.nargs = 1;
    return intern(t);
}

TermRef
TermPool::load(TermRef addr, unsigned size, bool is_signed)
{
    Term t;
    t.kind = TermKind::Load;
    t.size = size;
    t.isSigned = is_signed;
    t.args[0] = addr;
    t.nargs = 1;
    return intern(t);
}

std::optional<SWord>
TermPool::affineDiff(TermRef a, TermRef b)
{
    if (a == b)
        return 0;
    const LinForm *la = impl_->linOf(a);
    const LinForm *lb = impl_->linOf(b);
    LinForm atomA, atomB;
    if (!la) {
        atomA.emplace(Mono{a->id}, 1u);
        la = &atomA;
    }
    if (!lb) {
        atomB.emplace(Mono{b->id}, 1u);
        lb = &atomB;
    }
    const auto diff = linCombine(*la, *lb, Opcode::Sub);
    if (!diff)
        return std::nullopt;
    if (diff->empty())
        return 0;
    if (diff->size() == 1 && diff->begin()->first.empty())
        return static_cast<SWord>(diff->begin()->second);
    return std::nullopt;
}

Word
TermPool::eval(TermRef t, const std::unordered_map<TermRef, Word> &env)
{
    auto &vals = impl_->evalVals;
    auto &ep = impl_->evalEpoch;
    if (vals.size() < terms_.size()) {
        vals.resize(terms_.size());
        ep.resize(terms_.size(), 0);
    }
    const std::uint32_t epoch = ++impl_->epoch;

    // Iterative post-order evaluation (terms can be deep chains).
    std::vector<std::pair<TermRef, bool>> stack{{t, false}};
    while (!stack.empty()) {
        const TermRef cur = stack.back().first;
        if (ep[cur->id] == epoch) {
            stack.pop_back();
            continue;
        }
        if (!stack.back().second) {
            stack.back().second = true;
            // A Load is itself the env-assigned leaf; its address
            // subtree is not a value dependency (mirrors leaves()).
            if (cur->kind != TermKind::Load) {
                for (unsigned i = 0; i < cur->nargs; ++i) {
                    if (ep[cur->args[i]->id] != epoch)
                        stack.push_back({cur->args[i], false});
                }
            }
            continue;
        }
        Word v = 0;
        switch (cur->kind) {
          case TermKind::Const:
            v = cur->konst;
            break;
          case TermKind::Sym:
          case TermKind::Load: {
            auto it = env.find(cur);
            LIQUID_ASSERT(it != env.end(),
                          "eval: unassigned symbolic leaf");
            v = it->second;
            break;
          }
          case TermKind::Bin:
            v = evalScalarOp(cur->op, vals[cur->args[0]->id],
                             vals[cur->args[1]->id], cur->isFloat);
            break;
          case TermKind::Cmp:
            v = static_cast<Word>(static_cast<SWord>(
                evalCompare(vals[cur->args[0]->id],
                            vals[cur->args[1]->id], cur->isFloat)));
            break;
          case TermKind::Sel:
            v = condHoldsSign(cur->cond,
                              static_cast<int>(static_cast<SWord>(
                                  vals[cur->args[0]->id])))
                    ? vals[cur->args[1]->id]
                    : vals[cur->args[2]->id];
            break;
          case TermKind::Ext:
            v = extend(vals[cur->args[0]->id], cur->bits, cur->isSigned);
            break;
        }
        vals[cur->id] = v;
        ep[cur->id] = epoch;
        stack.pop_back();
    }
    return vals[t->id];
}

std::vector<TermRef>
TermPool::leaves(TermRef t)
{
    std::vector<TermRef> out;
    std::vector<TermRef> stack{t};
    std::unordered_map<TermRef, bool> seen;
    while (!stack.empty()) {
        TermRef cur = stack.back();
        stack.pop_back();
        if (seen[cur])
            continue;
        seen[cur] = true;
        if (cur->isLeaf()) {
            out.push_back(cur);
            if (cur->kind == TermKind::Load)
                continue; // the address is not a value dependency
        }
        for (unsigned i = 0; i < cur->nargs; ++i)
            stack.push_back(cur->args[i]);
    }
    std::sort(out.begin(), out.end(),
              [](TermRef a, TermRef b) { return a->id < b->id; });
    return out;
}

TermRef
TermPool::substitute(TermRef t,
                     const std::unordered_map<TermRef, TermRef> &map)
{
    std::unordered_map<TermRef, TermRef> memo;
    // Recursive lambda via explicit stack-free recursion: depth is
    // bounded by term height, which stays small in Lane mode (the only
    // substitution client).
    std::function<TermRef(TermRef)> go = [&](TermRef cur) -> TermRef {
        auto hit = map.find(cur);
        if (hit != map.end())
            return hit->second;
        auto m = memo.find(cur);
        if (m != memo.end())
            return m->second;
        TermRef out = cur;
        switch (cur->kind) {
          case TermKind::Const:
          case TermKind::Sym:
            break;
          case TermKind::Bin:
            out = bin(cur->op, go(cur->args[0]), go(cur->args[1]),
                      cur->isFloat);
            break;
          case TermKind::Cmp:
            out = cmp(go(cur->args[0]), go(cur->args[1]), cur->isFloat);
            break;
          case TermKind::Sel:
            out = sel(cur->cond, go(cur->args[0]), go(cur->args[1]),
                      go(cur->args[2]));
            break;
          case TermKind::Ext:
            out = ext(cur->bits, cur->isSigned, go(cur->args[0]));
            break;
          case TermKind::Load:
            out = load(go(cur->args[0]), cur->size, cur->isSigned);
            break;
        }
        memo.emplace(cur, out);
        return out;
    };
    return go(t);
}

std::string
TermPool::str(TermRef t) const
{
    std::ostringstream os;
    switch (t->kind) {
      case TermKind::Const:
        os << static_cast<SWord>(t->konst);
        break;
      case TermKind::Sym:
        os << decls_[t->sym].name;
        break;
      case TermKind::Bin:
        os << "(" << opName(t->op) << (t->isFloat ? ".f " : " ")
           << str(t->args[0]) << " " << str(t->args[1]) << ")";
        break;
      case TermKind::Cmp:
        os << "(cmp" << (t->isFloat ? ".f " : " ") << str(t->args[0])
           << " " << str(t->args[1]) << ")";
        break;
      case TermKind::Sel:
        os << "(sel" << static_cast<int>(t->cond) << " "
           << str(t->args[0]) << " " << str(t->args[1]) << " "
           << str(t->args[2]) << ")";
        break;
      case TermKind::Ext:
        os << "(" << (t->isSigned ? "sext" : "zext") << t->bits << " "
           << str(t->args[0]) << ")";
        break;
      case TermKind::Load:
        os << "(load" << t->size * 8 << (t->isSigned ? "s " : "u ")
           << str(t->args[0]) << ")";
        break;
    }
    return os.str();
}

// ===================================================================
// SymMachine
// ===================================================================

SymMachine::SymMachine(TermPool &pool, const Program &prog, AddrMode mode)
    : pool_(pool), prog_(prog), mode_(mode)
{
    regs_.fill(nullptr);
}

void
SymMachine::initSharedEntry()
{
    for (unsigned i = 0; i < regsPerClass; ++i) {
        const RegId ri(RegClass::Int, i);
        const RegId rf(RegClass::Flt, i);
        regs_[ri.flat()] = pool_.regSym(ri);
        regs_[rf.flat()] = pool_.regSym(rf);
    }
    cmp_ = pool_.cmpInitSym();
}

void
SymMachine::initPoisoned(const std::string &tag)
{
    for (unsigned i = 0; i < regsPerClass; ++i) {
        const RegId ri(RegClass::Int, i);
        const RegId rf(RegClass::Flt, i);
        regs_[ri.flat()] = pool_.poison(tag + ":" + regName(ri));
        regs_[rf.flat()] = pool_.poison(tag + ":" + regName(rf));
    }
    cmp_ = pool_.poison(tag + ":flags");
}

TermRef
SymMachine::reg(RegId r) const
{
    LIQUID_ASSERT(r.isScalar());
    return regs_[r.flat()];
}

void
SymMachine::setReg(RegId r, TermRef t)
{
    LIQUID_ASSERT(r.isScalar());
    regs_[r.flat()] = t;
}

bool
SymMachine::fail(MachineResult &res, int index, std::string why)
{
    res.ok = false;
    res.why = std::move(why);
    res.instIndex = index;
    return false;
}

TermRef
SymMachine::memAddrTerm(const Inst &inst)
{
    const unsigned esize = inst.elemSize();
    TermRef index = pool_.konst(static_cast<Word>(inst.mem.disp));
    if (inst.mem.index.isValid()) {
        index = pool_.bin(Opcode::Add, index, reg(inst.mem.index), false);
    }
    TermRef scaled =
        pool_.bin(Opcode::Mul, index, pool_.konst(esize), false);
    return pool_.bin(Opcode::Add, pool_.konst(inst.mem.base), scaled,
                     false);
}

bool
SymMachine::readMem(Addr addr, unsigned size, bool is_signed,
                    TermRef &out, MachineResult &res, int index)
{
    // Overlap scan over written cells (cells are at most 4 bytes).
    auto it = cells_.lower_bound(addr >= 3 ? addr - 3 : 0);
    for (; it != cells_.end() && it->first < addr + size; ++it) {
        const Addr cellAddr = it->first;
        const unsigned cellSize = it->second.size;
        if (cellAddr + cellSize <= addr)
            continue;
        if (cellAddr == addr && cellSize == size) {
            out = size < 4 ? pool_.ext(size * 8, is_signed,
                                       it->second.value)
                           : it->second.value;
            return true;
        }
        return fail(res, index,
                    "mixed-granularity access to stored cell at 0x" +
                        [&] {
                            std::ostringstream os;
                            os << std::hex << addr;
                            return os.str();
                        }());
    }
    Word w = 0;
    if (prog_.isReadOnly(addr) &&
        prog_.readInitialElem(addr, size, is_signed, w)) {
        out = pool_.konst(w);
        return true;
    }
    out = pool_.memSym(addr, size, is_signed);
    return true;
}

bool
SymMachine::writeMem(Addr addr, unsigned size, TermRef value,
                     MachineResult &res, int index)
{
    auto it = cells_.lower_bound(addr >= 3 ? addr - 3 : 0);
    for (; it != cells_.end() && it->first < addr + size; ++it) {
        const Addr cellAddr = it->first;
        const unsigned cellSize = it->second.size;
        if (cellAddr + cellSize <= addr)
            continue;
        if (cellAddr == addr && cellSize == size)
            break; // exact overwrite
        return fail(res, index,
                    "mixed-granularity store over cell at 0x" + [&] {
                        std::ostringstream os;
                        os << std::hex << addr;
                        return os.str();
                    }());
    }
    cells_[addr] = StoreCell{size, value};
    return true;
}

bool
SymMachine::readLane(TermRef addr, unsigned size, bool is_signed,
                     TermRef &out, MachineResult &res, int index)
{
    for (const auto &[cellAddr, cell] : laneCells_) {
        if (cellAddr == addr && cell.size == size) {
            out = size < 4 ? pool_.ext(size * 8, is_signed, cell.value)
                           : cell.value;
            return true;
        }
        const auto diff = pool_.affineDiff(addr, cellAddr);
        if (!diff) {
            return fail(res, index,
                        "load may alias an earlier symbolic store");
        }
        if (*diff > -static_cast<SWord>(size) &&
            *diff < static_cast<SWord>(cell.size)) {
            return fail(res, index,
                        "load overlaps an earlier symbolic store");
        }
    }
    if (addr->isConst()) {
        Word w = 0;
        if (prog_.isReadOnly(addr->konst) &&
            prog_.readInitialElem(addr->konst, size, is_signed, w)) {
            out = pool_.konst(w);
            return true;
        }
    }
    out = pool_.load(addr, size, is_signed);
    return true;
}

bool
SymMachine::writeLane(TermRef addr, unsigned size, TermRef value,
                      MachineResult &res, int index)
{
    for (auto &[cellAddr, cell] : laneCells_) {
        if (cellAddr == addr && cell.size == size) {
            cell.value = value;
            return true;
        }
        const auto diff = pool_.affineDiff(addr, cellAddr);
        if (!diff) {
            return fail(res, index,
                        "store may alias an earlier symbolic store");
        }
        if (*diff > -static_cast<SWord>(size) &&
            *diff < static_cast<SWord>(cell.size)) {
            return fail(res, index,
                        "store overlaps an earlier symbolic store");
        }
    }
    laneCells_.emplace_back(addr, StoreCell{size, value});
    return true;
}

MachineResult
SymMachine::runScalarRegion(int entry_index, std::uint64_t max_steps)
{
    return run(prog_.code(), entry_index,
               static_cast<int>(prog_.code().size()) - 1, true, false,
               nullptr, max_steps);
}

MachineResult
SymMachine::runScalarBody(int first, int last, std::uint64_t max_steps)
{
    return run(prog_.code(), first, last, false, false, nullptr,
               max_steps);
}

MachineResult
SymMachine::runUcode(const UcodeEntry &entry, std::uint64_t max_steps)
{
    return run(entry.insts, 0, static_cast<int>(entry.insts.size()) - 1,
               true, true, &entry, max_steps);
}

MachineResult
SymMachine::runUcodeBody(const UcodeEntry &entry, unsigned first,
                         unsigned last, std::uint64_t max_steps)
{
    return run(entry.insts, static_cast<int>(first),
               static_cast<int>(last), false, true, &entry, max_steps);
}

MachineResult
SymMachine::run(const std::vector<Inst> &code, int first, int last,
                bool follow_branches, bool in_ucode,
                const UcodeEntry *ucode, std::uint64_t max_steps)
{
    MachineResult res;
    int pc = first;
    while (true) {
        if (pc > last || pc < 0 ||
            pc >= static_cast<int>(code.size())) {
            if (in_ucode || !follow_branches)
                break; // microcode/body completes by running off the end
            fail(res, pc, "execution ran past the region");
            break;
        }
        if (++res.steps > max_steps) {
            fail(res, pc, "step budget exhausted");
            break;
        }
        const Inst &inst = code[static_cast<std::size_t>(pc)];
        if (!follow_branches && inst.op == Opcode::B) {
            ++pc; // the caller proved this is the loop's own backedge
            continue;
        }
        int next = pc + 1;
        if (inst.op == Opcode::Ret) {
            if (in_ucode) {
                fail(res, pc, "ret inside microcode");
                break;
            }
            return res; // region exit
        }
        if (!step(inst, pc, ucode, next, res))
            break;
        pc = next;
    }
    if (res.ok && !in_ucode && follow_branches)
        fail(res, pc, "region never reached its ret");
    return res;
}

bool
SymMachine::step(const Inst &inst, int index, const UcodeEntry *ucode,
                 int &next, MachineResult &res)
{
    const OpInfo &info = inst.info();

    if (info.isVector)
        return execVector(inst, index, ucode, res);

    switch (inst.op) {
      case Opcode::Nop:
        return true;
      case Opcode::Halt:
        return fail(res, index, "halt inside region");
      case Opcode::Bl:
        return fail(res, index, "nested call inside region");
      case Opcode::Mov: {
        TermRef value = inst.hasImm
                            ? pool_.konst(static_cast<Word>(inst.imm))
                            : reg(inst.src1);
        if (inst.cond != Cond::AL)
            value = pool_.sel(inst.cond, cmp_, value, reg(inst.dst));
        setReg(inst.dst, value);
        return true;
      }
      case Opcode::Cmp: {
        TermRef a = reg(inst.src1);
        TermRef b = inst.hasImm
                        ? pool_.konst(static_cast<Word>(inst.imm))
                        : reg(inst.src2);
        TermRef s = pool_.cmp(a, b, inst.src1.isFloat());
        cmp_ = inst.cond == Cond::AL
                   ? s
                   : pool_.sel(inst.cond, cmp_, s, cmp_);
        return true;
      }
      case Opcode::B: {
        if (inst.target < 0)
            return fail(res, index, "unresolved branch");
        bool taken = true;
        if (inst.cond != Cond::AL) {
            if (!cmp_->isConst()) {
                return fail(res, index,
                            "branch on data-dependent flags: " +
                                pool_.str(cmp_));
            }
            taken = condHoldsSign(
                inst.cond,
                static_cast<int>(static_cast<SWord>(cmp_->konst)));
        }
        if (taken)
            next = inst.target;
        return true;
      }
      default:
        break;
    }

    if (inst.cond != Cond::AL && (info.isLoad || info.isStore))
        return fail(res, index, "conditional memory operation");

    if (info.isLoad) {
        TermRef addr = memAddrTerm(inst);
        TermRef value = nullptr;
        if (mode_ == AddrMode::Concrete) {
            if (!addr->isConst()) {
                return fail(res, index,
                            "effective address did not fold to a "
                            "constant: " +
                                pool_.str(addr));
            }
            if (!readMem(addr->konst, info.memElemSize, info.memSigned,
                         value, res, index))
                return false;
        } else {
            if (!readLane(addr, info.memElemSize, info.memSigned, value,
                          res, index))
                return false;
        }
        setReg(inst.dst, value);
        return true;
    }

    if (info.isStore) {
        TermRef addr = memAddrTerm(inst);
        TermRef value = reg(inst.src1);
        if (mode_ == AddrMode::Concrete) {
            if (!addr->isConst()) {
                return fail(res, index,
                            "store address did not fold to a "
                            "constant: " +
                                pool_.str(addr));
            }
            return writeMem(addr->konst, info.memElemSize, value, res,
                            index);
        }
        return writeLane(addr, info.memElemSize, value, res, index);
    }

    if (info.isDataProc) {
        TermRef a = reg(inst.src1);
        TermRef b = inst.hasImm
                        ? pool_.konst(static_cast<Word>(inst.imm))
                        : reg(inst.src2);
        TermRef value = pool_.bin(inst.op, a, b, inst.dst.isFloat());
        if (inst.cond != Cond::AL)
            value = pool_.sel(inst.cond, cmp_, value, reg(inst.dst));
        setReg(inst.dst, value);
        return true;
    }

    return fail(res, index,
                std::string("unhandled opcode ") + opName(inst.op));
}

bool
SymMachine::execVector(const Inst &inst, int index,
                       const UcodeEntry *ucode, MachineResult &res)
{
    if (!ucode)
        return fail(res, index, "vector instruction in a scalar region");
    if (inst.cond != Cond::AL)
        return fail(res, index, "conditional vector instruction");

    const OpInfo &info = inst.info();
    const unsigned width = ucode->simdWidth;
    const bool use_float = inst.dst.isFloat();

    auto vecOf = [&](RegId r) -> std::array<TermRef, 16> & {
        auto it = vregs_.find(r.flat());
        if (it == vregs_.end()) {
            std::array<TermRef, 16> lanes{};
            for (unsigned l = 0; l < 16; ++l) {
                lanes[l] = pool_.poison("uninit:" + regName(r) + "[" +
                                        std::to_string(l) + "]");
            }
            it = vregs_.emplace(r.flat(), lanes).first;
        }
        return it->second;
    };
    auto laneOf = [&](RegId r) -> TermRef {
        auto it = laneVregs_.find(r.flat());
        if (it == laneVregs_.end()) {
            it = laneVregs_
                     .emplace(r.flat(),
                              pool_.poison("uninit:" + regName(r)))
                     .first;
        }
        return it->second;
    };

    if (mode_ == AddrMode::Lane) {
        // Width-polymorphic execution: one lane-generic term per vreg.
        LIQUID_ASSERT(lane_, "Lane mode without a lane parameter");
        if (info.isReduction || inst.op == Opcode::Vperm ||
            inst.op == Opcode::Vmask) {
            return fail(res, index,
                        std::string("not lane-generic: ") +
                            opName(inst.op));
        }
        const unsigned esize = info.memElemSize;
        if (info.isLoad) {
            TermRef base = memAddrTerm(inst);
            TermRef addr = pool_.bin(
                Opcode::Add, base,
                pool_.bin(Opcode::Mul, lane_, pool_.konst(esize), false),
                false);
            TermRef value = nullptr;
            if (!readLane(addr, esize, info.memSigned, value, res,
                          index))
                return false;
            laneVregs_[inst.dst.flat()] = value;
            return true;
        }
        if (info.isStore) {
            TermRef base = memAddrTerm(inst);
            TermRef addr = pool_.bin(
                Opcode::Add, base,
                pool_.bin(Opcode::Mul, lane_, pool_.konst(esize), false),
                false);
            return writeLane(addr, esize, laneOf(inst.src1), res, index);
        }
        const Opcode scalar_op = info.scalarEquiv;
        if (scalar_op == Opcode::Nop) {
            return fail(res, index,
                        std::string("no scalar equivalent for ") +
                            opName(inst.op));
        }
        TermRef b = nullptr;
        if (inst.cvec != noCvec) {
            const ConstVec &cv = ucode->cvecs[inst.cvec];
            if (cv.lanes.size() != 1) {
                return fail(res, index,
                            "periodic constant vector is not "
                            "lane-generic");
            }
            b = pool_.konst(cv.lanes[0]);
        } else if (inst.hasImm) {
            b = pool_.konst(static_cast<Word>(inst.imm));
        } else {
            b = laneOf(inst.src2);
        }
        laneVregs_[inst.dst.flat()] =
            pool_.bin(scalar_op, laneOf(inst.src1), b, use_float);
        return true;
    }

    // ---- Concrete mode: explicit per-lane state -----------------------
    if (info.isLoad) {
        TermRef addr = memAddrTerm(inst);
        if (!addr->isConst()) {
            return fail(res, index,
                        "vector load address did not fold: " +
                            pool_.str(addr));
        }
        std::array<TermRef, 16> lanes{};
        for (unsigned l = 0; l < width; ++l) {
            if (!readMem(addr->konst + l * info.memElemSize,
                         info.memElemSize, info.memSigned, lanes[l], res,
                         index))
                return false;
        }
        vregs_[inst.dst.flat()] = lanes;
        return true;
    }
    if (info.isStore) {
        TermRef addr = memAddrTerm(inst);
        if (!addr->isConst()) {
            return fail(res, index,
                        "vector store address did not fold: " +
                            pool_.str(addr));
        }
        auto &lanes = vecOf(inst.src1);
        for (unsigned l = 0; l < width; ++l) {
            if (!writeMem(addr->konst + l * info.memElemSize,
                          info.memElemSize, lanes[l], res, index))
                return false;
        }
        return true;
    }
    if (info.isReduction) {
        const Opcode scalar_op = info.scalarEquiv;
        TermRef out = reg(inst.src1);
        auto &lanes = vecOf(inst.src2);
        for (unsigned l = 0; l < width; ++l)
            out = pool_.bin(scalar_op, out, lanes[l], use_float);
        setReg(inst.dst, out);
        return true;
    }
    if (inst.op == Opcode::Vperm) {
        auto &src = vecOf(inst.src1);
        std::array<TermRef, 16> out{};
        const unsigned block = inst.permBlock;
        for (unsigned l = 0; l < width; ++l) {
            const unsigned base = (l / block) * block;
            out[l] =
                src[base + permSourceLane(inst.permKind, block,
                                          l % block)];
        }
        vregs_[inst.dst.flat()] = out;
        return true;
    }
    if (inst.op == Opcode::Vmask) {
        auto &src = vecOf(inst.src1);
        std::array<TermRef, 16> out{};
        for (unsigned l = 0; l < width; ++l) {
            out[l] = ((inst.maskBits >> (l % inst.maskBlock)) & 1u)
                         ? src[l]
                         : pool_.konst(0);
        }
        vregs_[inst.dst.flat()] = out;
        return true;
    }

    const Opcode scalar_op = info.scalarEquiv;
    if (scalar_op == Opcode::Nop) {
        return fail(res, index,
                    std::string("no scalar equivalent for ") +
                        opName(inst.op));
    }
    auto &a = vecOf(inst.src1);
    std::array<TermRef, 16> out{};
    if (inst.cvec != noCvec) {
        const ConstVec &cv = ucode->cvecs[inst.cvec];
        LIQUID_ASSERT(!cv.lanes.empty());
        for (unsigned l = 0; l < width; ++l) {
            out[l] = pool_.bin(scalar_op, a[l],
                               pool_.konst(cv.lanes[l % cv.lanes.size()]),
                               use_float);
        }
    } else if (inst.hasImm) {
        TermRef b = pool_.konst(static_cast<Word>(inst.imm));
        for (unsigned l = 0; l < width; ++l)
            out[l] = pool_.bin(scalar_op, a[l], b, use_float);
    } else {
        auto &b = vecOf(inst.src2);
        for (unsigned l = 0; l < width; ++l)
            out[l] = pool_.bin(scalar_op, a[l], b[l], use_float);
    }
    vregs_[inst.dst.flat()] = out;
    return true;
}

} // namespace liquid::sym
