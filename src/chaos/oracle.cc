#include "chaos/oracle.hh"

#include <algorithm>
#include <sstream>

#include "asm/program.hh"
#include "common/logging.hh"
#include "memory/ucode_cache.hh"
#include "sim/system.hh"

namespace liquid
{

namespace
{

/** Cap per-category mismatch listings; the first few localize a bug. */
constexpr std::size_t maxDiffsPerCategory = 4;

ArchSnapshot
snapshotSystem(const System &sys, const Program &prog,
               const std::map<Addr, std::vector<Cycles>> &call_log)
{
    ArchSnapshot snap;
    const std::size_t bytes = prog.dataImage().size();
    snap.memory.reserve(bytes / 4 + 1);
    for (std::size_t off = 0; off + 4 <= bytes; off += 4)
        snap.memory.push_back(sys.memory().readWord(Program::dataBase + off));

    const RegFile &regs = sys.core().regs();
    for (unsigned i = 0; i < regsPerClass; ++i) {
        snap.scalars[i] = regs.read(RegId(RegClass::Int, i));
        snap.scalars[regsPerClass + i] =
            regs.read(RegId(RegClass::Flt, i));
    }
    snap.cmpState = regs.cmpState();

    for (const auto &[target, calls] : call_log)
        snap.callCounts[target] = calls.size();
    return snap;
}

std::string
hex(Word w)
{
    std::ostringstream os;
    os << "0x" << std::hex << w;
    return os.str();
}

/**
 * Shared Liquid-run-and-compare tail: run @p prog under @p config
 * (optionally with @p inject pre-seeded into the microcode cache,
 * ready at cycle 0) and diff the masked final state against @p ref.
 */
ChaosReport
runLiquidAgainstReference(const ChaosReference &ref, const Program &prog,
                          SystemConfig config, const UcodeEntry *inject)
{
    // Watchdog: a fault schedule may only slow a correct core down by
    // re-translations and scalar fallback, never unboundedly. A run
    // that retires vastly more instructions than the scalar reference
    // is livelocked (e.g. a broken fallback dropped a loop live-out),
    // which the oracle must report as divergence, not hang on.
    config.core.maxInsts = std::max<std::uint64_t>(
        ref.instsRetired * 64 + 10'000, 100'000);

    System sys(config, prog);
    if (inject) {
        UcodeEntry entry = *inject;
        entry.readyAt = 0;
        sys.ucodeCache().insert(std::move(entry));
    }

    ChaosReport report;
    try {
        sys.run();
    } catch (const PanicError &e) {
        report.mismatches.push_back(
            std::string("run did not complete: ") + e.what());
    }
    report.cycles = sys.cycles();
    for (const auto &[stat, value] : sys.core().stats()) {
        if (stat.rfind("faults.", 0) == 0)
            report.faultsFired += value;
    }
    report.retranslations = sys.translator().stats().get("retranslations");
    report.translations = sys.translator().stats().get("translations");

    report.finalState = snapshotSystem(sys, prog, sys.core().callLog());

    // Memory and call-log shape must match the scalar ground truth bit
    // for bit; register residue is excluded from the cross-strategy
    // contract (see the file header) by masking it to the reference.
    ArchSnapshot masked = report.finalState;
    masked.scalars = ref.snapshot.scalars;
    masked.cmpState = ref.snapshot.cmpState;

    for (auto &m : masked.diff(ref.snapshot))
        report.mismatches.push_back(std::move(m));
    report.equal = report.mismatches.empty();
    return report;
}

} // namespace

bool
ArchSnapshot::operator==(const ArchSnapshot &o) const
{
    return memory == o.memory && scalars == o.scalars &&
           cmpState == o.cmpState && callCounts == o.callCounts;
}

std::vector<std::string>
ArchSnapshot::diff(const ArchSnapshot &other) const
{
    std::vector<std::string> out;

    if (memory.size() != other.memory.size()) {
        out.push_back("memory image size " +
                      std::to_string(memory.size() * 4) + " vs " +
                      std::to_string(other.memory.size() * 4) + " bytes");
    } else {
        std::size_t shown = 0, total = 0;
        for (std::size_t i = 0; i < memory.size(); ++i) {
            if (memory[i] == other.memory[i])
                continue;
            ++total;
            if (shown < maxDiffsPerCategory) {
                out.push_back(
                    "mem[" + hex(Program::dataBase + 4 * i) + "] = " +
                    hex(memory[i]) + ", reference " +
                    hex(other.memory[i]));
                ++shown;
            }
        }
        if (total > shown) {
            out.push_back("... and " + std::to_string(total - shown) +
                          " more differing memory words");
        }
    }

    std::size_t reg_shown = 0;
    for (std::size_t i = 0; i < scalars.size(); ++i) {
        if (scalars[i] == other.scalars[i])
            continue;
        if (reg_shown++ >= maxDiffsPerCategory)
            continue;
        const RegId reg(i < regsPerClass ? RegClass::Int : RegClass::Flt,
                        static_cast<unsigned>(i % regsPerClass));
        out.push_back(std::string(regName(reg)) + " = " +
                      hex(scalars[i]) + ", reference " +
                      hex(other.scalars[i]));
    }

    if (cmpState != other.cmpState) {
        out.push_back("cmpState " + std::to_string(cmpState) +
                      ", reference " + std::to_string(other.cmpState));
    }

    if (callCounts != other.callCounts)
        out.push_back("call log shape differs (targets or counts)");

    return out;
}

ChaosReference
makeReference(const Program &prog, unsigned width)
{
    System sys(SystemConfig::make(ExecMode::ScalarBaseline, width), prog);
    sys.run();

    ChaosReference ref;
    const auto call_log = sys.core().callLog();
    ref.snapshot = snapshotSystem(sys, prog, call_log);
    ref.instsRetired = sys.core().stats().get("insts");
    for (const auto &[target, calls] : call_log)
        ref.regions.push_back(target);

    return ref;
}

ChaosReport
checkSchedule(const ChaosReference &ref, const Program &prog,
              unsigned width, const FaultSchedule &sched, bool sabotage)
{
    SystemConfig config = SystemConfig::make(ExecMode::Liquid, width);
    config.core.faults = sched;
    config.core.sabotageAbandonUcodeOnInterrupt = sabotage;
    return runLiquidAgainstReference(ref, prog, config, nullptr);
}

ChaosReport
checkUcodeInjection(const ChaosReference &ref, const Program &prog,
                    unsigned width, const UcodeEntry &entry)
{
    const SystemConfig config =
        SystemConfig::make(ExecMode::Liquid, width);
    return runLiquidAgainstReference(ref, prog, config, &entry);
}

ExploreSummary
exploreSchedules(const Program &prog, unsigned width,
                 const ExploreOptions &opts)
{
    const ChaosReference ref =
        (opts.refMaker ? opts.refMaker : makeReference)(prog, width);
    ExploreSummary summary;

    auto runOne = [&](const FaultSchedule &sched) {
        const ChaosReport report = checkSchedule(ref, prog, width, sched);
        ++summary.schedulesRun;
        summary.faultsFired += report.faultsFired;
        summary.retranslations += report.retranslations;
        for (const FaultEvent &e : sched.events)
            ++summary.kindCoverage[faultKindName(e.kind)];
        if (sched.interruptPeriod)
            ++summary.kindCoverage[faultKindName(FaultKind::Interrupt)];
        if (!report.equal) {
            summary.failures.push_back(
                ExploreFailure{sched.key(), report.mismatches});
        }
    };

    // Exhaustive part: every kind at every retire index in the window.
    const std::uint64_t window = std::min(opts.window, ref.instsRetired);
    for (std::uint64_t at = 1; at <= window; ++at) {
        for (std::size_t k = 0;
             k < static_cast<std::size_t>(FaultKind::NumKinds); ++k) {
            FaultSchedule sched;
            sched.add(static_cast<FaultKind>(k), at);
            runOne(sched);
        }
    }

    // Randomized part: multi-event schedules over the full run.
    Rng rng(opts.seed);
    for (unsigned t = 0; t < opts.trials; ++t) {
        runOne(FaultSchedule::random(
            rng, std::max<std::uint64_t>(ref.instsRetired, 1),
            ref.regions));
    }

    return summary;
}

} // namespace liquid
