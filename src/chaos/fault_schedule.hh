/**
 * @file
 * Deterministic fault schedules for the chaos subsystem.
 *
 * The paper's graceful-degradation claim (Sections 3.4 and 4) is that
 * *any* external event — an interrupt mid-region, a context switch
 * flushing the microcode cache, self-modifying code invalidating a
 * translation — leaves architectural results identical to the scalar
 * loop. A FaultSchedule makes those events first-class, reproducible
 * inputs: a sorted list of retire-indexed events plus the legacy
 * cycle-periodic interrupt, with a canonical string key so any failing
 * schedule can be replayed from a JSON report.
 *
 * Only the schedule container and its inline helpers live in this
 * header; the Core consumes schedules without linking liquid_chaos.
 * key()/parse()/random() live in fault_schedule.cc.
 */

#ifndef LIQUID_CHAOS_FAULT_SCHEDULE_HH
#define LIQUID_CHAOS_FAULT_SCHEDULE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace liquid
{

/** What kind of external event fires. */
enum class FaultKind : std::uint8_t
{
    Interrupt,      ///< external abort signal (paper Figure 5)
    UcodeFlush,     ///< context switch: drop every cached translation
    UcodeEvict,     ///< evict one microcode-cache entry (LRU if no addr)
    SmcStore,       ///< self-modifying-code store into translated code
    DcachePerturb,  ///< flush the data cache (timing-only perturbation)
    NumKinds,
};

/** Canonical short tag used in schedule keys and fault statistics. */
inline const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Interrupt: return "int";
      case FaultKind::UcodeFlush: return "flush";
      case FaultKind::UcodeEvict: return "evict";
      case FaultKind::SmcStore: return "smc";
      case FaultKind::DcachePerturb: return "dcache";
      case FaultKind::NumKinds: break;
    }
    return "?";
}

/**
 * One scheduled event. It fires exactly once, at the top of the step
 * that would retire instruction number atRetire+1 — i.e. after
 * atRetire instructions have retired — so schedules are deterministic
 * in instruction count, independent of cycle-level timing.
 */
struct FaultEvent
{
    FaultKind kind = FaultKind::Interrupt;
    std::uint64_t atRetire = 0;
    /**
     * Event payload: the microcode-cache entry to evict (UcodeEvict)
     * or the code address overwritten (SmcStore). invalidAddr selects
     * a deterministic default victim — the LRU entry for evictions,
     * the most recently dispatched region for SMC stores.
     */
    Addr addr = invalidAddr;

    bool
    operator==(const FaultEvent &o) const
    {
        return kind == o.kind && atRetire == o.atRetire && addr == o.addr;
    }
};

/**
 * A complete failure-injection plan for one run: retire-indexed events
 * plus the legacy cycle-periodic interrupt (the generalization of the
 * old Core::Config::interruptPeriod knob).
 */
struct FaultSchedule
{
    /** Raise an interrupt every N cycles; 0 disables. */
    Cycles interruptPeriod = 0;
    /** One-shot events, kept sorted by (atRetire, kind, addr). */
    std::vector<FaultEvent> events;

    /** The legacy failure-injection mode: an interrupt every N cycles. */
    static FaultSchedule
    periodic(Cycles period)
    {
        FaultSchedule s;
        s.interruptPeriod = period;
        return s;
    }

    /** Append an event, keeping canonical order. Returns *this. */
    FaultSchedule &
    add(FaultKind kind, std::uint64_t at_retire, Addr addr = invalidAddr)
    {
        events.push_back(FaultEvent{kind, at_retire, addr});
        normalize();
        return *this;
    }

    /** Restore canonical event order (after direct events edits). */
    void
    normalize()
    {
        std::sort(events.begin(), events.end(),
                  [](const FaultEvent &a, const FaultEvent &b) {
                      if (a.atRetire != b.atRetire)
                          return a.atRetire < b.atRetire;
                      if (a.kind != b.kind)
                          return a.kind < b.kind;
                      return a.addr < b.addr;
                  });
    }

    bool empty() const { return interruptPeriod == 0 && events.empty(); }

    bool
    operator==(const FaultSchedule &o) const
    {
        return interruptPeriod == o.interruptPeriod && events == o.events;
    }

    /**
     * Canonical, path-safe key, e.g. "none", "p700" (periodic),
     * "int@120+flush@300+smc@400:4096". The key round-trips through
     * parse() and names chaos experiments in JSON reports and the lab
     * job keys; it never contains '/'.
     */
    std::string key() const;

    /** Inverse of key(); fatal() on malformed input. */
    static FaultSchedule parse(const std::string &key);

    /**
     * Draw a random schedule: 1..3 events with retire indices in
     * [1, max_retire], kinds uniform over the repertoire. Addressed
     * events (evict/SMC) target a random member of @p regions when
     * provided, the deterministic default victim otherwise.
     */
    static FaultSchedule random(Rng &rng, std::uint64_t max_retire,
                                const std::vector<Addr> &regions = {});
};

} // namespace liquid

#endif // LIQUID_CHAOS_FAULT_SCHEDULE_HH
