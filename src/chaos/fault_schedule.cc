#include "chaos/fault_schedule.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace liquid
{

namespace
{

/** Parse a kind tag; fatal() with the offending token on a miss. */
FaultKind
parseKind(const std::string &tag, const std::string &key)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(FaultKind::NumKinds); ++i) {
        const auto kind = static_cast<FaultKind>(i);
        if (tag == faultKindName(kind))
            return kind;
    }
    fatal("fault schedule '", key, "': unknown event kind '", tag, "'");
}

std::uint64_t
parseNumber(const std::string &text, const std::string &key)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        fatal("fault schedule '", key, "': bad number '", text, "'");
    return std::strtoull(text.c_str(), nullptr, 10);
}

} // namespace

std::string
FaultSchedule::key() const
{
    if (empty())
        return "none";
    std::string k;
    auto append = [&k](const std::string &part) {
        if (!k.empty())
            k += '+';
        k += part;
    };
    if (interruptPeriod)
        append("p" + std::to_string(interruptPeriod));
    for (const FaultEvent &e : events) {
        std::string part = std::string(faultKindName(e.kind)) + "@" +
                           std::to_string(e.atRetire);
        if (e.addr != invalidAddr)
            part += ":" + std::to_string(e.addr);
        append(part);
    }
    return k;
}

FaultSchedule
FaultSchedule::parse(const std::string &key)
{
    FaultSchedule s;
    if (key.empty() || key == "none")
        return s;

    std::size_t pos = 0;
    while (pos <= key.size()) {
        const std::size_t next = key.find('+', pos);
        const std::string part =
            key.substr(pos, next == std::string::npos ? std::string::npos
                                                      : next - pos);
        if (part.empty())
            fatal("fault schedule '", key, "': empty component");

        if (part[0] == 'p' && part.find('@') == std::string::npos) {
            if (s.interruptPeriod)
                fatal("fault schedule '", key,
                      "': duplicate periodic component");
            s.interruptPeriod = static_cast<Cycles>(
                parseNumber(part.substr(1), key));
            if (!s.interruptPeriod)
                fatal("fault schedule '", key, "': period must be > 0");
        } else {
            const std::size_t at = part.find('@');
            if (at == std::string::npos)
                fatal("fault schedule '", key, "': component '", part,
                      "' has no @retire index");
            FaultEvent e;
            e.kind = parseKind(part.substr(0, at), key);
            const std::size_t colon = part.find(':', at);
            if (colon == std::string::npos) {
                e.atRetire =
                    parseNumber(part.substr(at + 1), key);
            } else {
                e.atRetire = parseNumber(
                    part.substr(at + 1, colon - at - 1), key);
                e.addr = static_cast<Addr>(
                    parseNumber(part.substr(colon + 1), key));
            }
            s.events.push_back(e);
        }
        if (next == std::string::npos)
            break;
        pos = next + 1;
    }
    s.normalize();
    return s;
}

FaultSchedule
FaultSchedule::random(Rng &rng, std::uint64_t max_retire,
                      const std::vector<Addr> &regions)
{
    LIQUID_ASSERT(max_retire >= 1, "empty retire window");
    FaultSchedule s;
    const int num_events = static_cast<int>(rng.range(1, 3));
    for (int i = 0; i < num_events; ++i) {
        FaultEvent e;
        e.kind = static_cast<FaultKind>(rng.range(
            0, static_cast<int>(FaultKind::NumKinds) - 1));
        e.atRetire = static_cast<std::uint64_t>(
            rng.range(1, static_cast<std::int64_t>(max_retire)));
        const bool addressed = e.kind == FaultKind::UcodeEvict ||
                               e.kind == FaultKind::SmcStore;
        if (addressed && !regions.empty() && rng.chance(0.75)) {
            e.addr = regions[static_cast<std::size_t>(rng.range(
                0, static_cast<int>(regions.size()) - 1))];
        }
        s.events.push_back(e);
    }
    s.normalize();
    return s;
}

} // namespace liquid
