/**
 * @file
 * Architectural-state equivalence oracle for fault injection.
 *
 * The paper's correctness contract (Sections 3.4, 4) is that Liquid
 * SIMD execution is transparent: whatever external events occur —
 * interrupts, microcode-cache flushes or evictions, self-modifying
 * code — the architectural results are bit-identical to the scalar
 * loop, because every abort path falls back to the original scalar
 * code. The oracle makes that checkable: run the scalar baseline once
 * (fault-free, by construction the ground truth), then run the same
 * program in Liquid mode under an arbitrary FaultSchedule and compare
 *
 *   - the final data-memory image, word for word, and
 *   - the call log's shape (targets and call counts; cycle stamps
 *     legitimately differ between modes).
 *
 * Registers are deliberately NOT part of the cross-strategy contract:
 * by the paper's region liveness contract only region live-outs must
 * survive translation, scratch registers may hold different residue
 * under scalar vs microcode execution, and at the halt boundary no
 * register is live — every live-out was flushed to memory by the
 * driver, where the comparison sees it. The full register file IS
 * part of the determinism contract instead: the same (program, width,
 * schedule) triple must reproduce the identical final state, bit for
 * bit, which checkSchedule exposes via ChaosReport::finalState.
 *
 * The schedule explorer sweeps schedules — exhaustively over small
 * retire windows, randomized beyond — reusing one reference snapshot
 * per (program, width).
 */

#ifndef LIQUID_CHAOS_ORACLE_HH
#define LIQUID_CHAOS_ORACLE_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/fault_schedule.hh"
#include "common/random.hh"
#include "isa/registers.hh"

namespace liquid
{

class Program;
struct UcodeEntry;

/** The architectural state the scalar ISA promises after a run. */
struct ArchSnapshot
{
    std::vector<Word> memory;  ///< data image, words from dataBase
    std::array<Word, 2 * regsPerClass> scalars{};  ///< r0..15, f0..15
    int cmpState = 0;
    std::map<Addr, std::size_t> callCounts;  ///< bl target -> count

    bool operator==(const ArchSnapshot &o) const;

    /**
     * Human-readable differences against @p other (the reference),
     * capped at a handful per category. Empty when equal.
     */
    std::vector<std::string> diff(const ArchSnapshot &other) const;
};

/** Fault-free ground truth for one (program, width). */
struct ChaosReference
{
    ArchSnapshot snapshot;        ///< scalar-baseline final state
    std::uint64_t instsRetired = 0;  ///< retire window for schedules
    std::vector<Addr> regions;    ///< bl targets (addressed events)
};

/** Run the scalar baseline once and snapshot the result. */
ChaosReference makeReference(const Program &prog, unsigned width);

/** Outcome of one Liquid-under-faults run against the reference. */
struct ChaosReport
{
    bool equal = false;
    std::vector<std::string> mismatches;  ///< empty when equal
    Cycles cycles = 0;
    std::uint64_t faultsFired = 0;     ///< core "faults.*" total
    std::uint64_t retranslations = 0;  ///< translator re-commits
    std::uint64_t translations = 0;
    /**
     * Complete final state (memory, all scalar registers, cmpState,
     * call counts) — the determinism contract: repeating the same
     * (program, width, schedule) triple must reproduce it exactly.
     */
    ArchSnapshot finalState;
};

/**
 * The oracle proper: run @p prog in Liquid mode at @p width under
 * @p sched and compare the final architectural state against the
 * reference. A run retiring far beyond the scalar reference trips an
 * instruction watchdog and reports as divergence (a correct core can
 * only be slowed by faults, never livelocked). @p sabotage enables
 * the deliberately broken abandon-microcode-on-interrupt core model
 * (tests only).
 */
ChaosReport checkSchedule(const ChaosReference &ref, const Program &prog,
                          unsigned width, const FaultSchedule &sched,
                          bool sabotage = false);

/**
 * Counterexample-replay hook for the translation-validation prover
 * (proof.hh): run @p prog in Liquid mode at @p width with @p entry
 * pre-inserted into the microcode cache, ready at cycle 0, so the core
 * dispatches the injected microcode on the first bl instead of waiting
 * for the translator. No faults are scheduled. A refuted (mutated or
 * mis-translated) entry must surface here as an architectural
 * divergence against the scalar reference.
 */
ChaosReport checkUcodeInjection(const ChaosReference &ref,
                                const Program &prog, unsigned width,
                                const UcodeEntry &entry);

/** Schedule-exploration parameters. */
struct ExploreOptions
{
    /**
     * Exhaustive part: every single-event schedule with each fault
     * kind at each retire index in [1, window]. 0 skips it.
     */
    std::uint64_t window = 24;
    /** Randomized part: multi-event schedules beyond the window. */
    unsigned trials = 32;
    std::uint64_t seed = 1;
    /**
     * Reference-side runner computing the scalar ground truth for
     * (program, width); null selects makeReference (the cycle core).
     * The functional tier's makeFunctionalReference (fast/reference.hh)
     * is a drop-in replacement that makes large sweeps cheap; a plain
     * function pointer keeps liquid_chaos free of a fast dependency.
     */
    ChaosReference (*refMaker)(const Program &, unsigned) = nullptr;
};

/** One failing schedule, replayable from its key. */
struct ExploreFailure
{
    std::string scheduleKey;
    std::vector<std::string> mismatches;
};

/** Aggregate outcome of an exploration sweep. */
struct ExploreSummary
{
    unsigned schedulesRun = 0;
    std::uint64_t faultsFired = 0;
    std::uint64_t retranslations = 0;
    std::vector<ExploreFailure> failures;  ///< empty on success
    /** Schedules that contained each kind, keyed by faultKindName. */
    std::map<std::string, unsigned> kindCoverage;

    bool ok() const { return failures.empty(); }
};

/**
 * Sweep schedules for one (program, width): exhaustive single-event
 * schedules over the retire window, then randomized multi-event ones.
 * The reference snapshot is computed once and shared.
 */
ExploreSummary exploreSchedules(const Program &prog, unsigned width,
                                const ExploreOptions &opts);

} // namespace liquid

#endif // LIQUID_CHAOS_ORACLE_HH
