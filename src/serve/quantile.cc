#include "serve/quantile.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace liquid::serve
{

std::size_t
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    if (value < subBuckets)
        return static_cast<std::size_t>(value);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(value));
    const unsigned shift = msb - subBucketBits;
    const std::uint64_t mantissa = value >> shift;  // [subBuckets, 2*subBuckets)
    return static_cast<std::size_t>((shift + 1) * subBuckets +
                                    (mantissa - subBuckets));
}

std::uint64_t
LatencyHistogram::bucketLow(std::size_t index)
{
    if (index < subBuckets)
        return index;
    const unsigned shift =
        static_cast<unsigned>(index / subBuckets) - 1;
    const std::uint64_t mantissa = subBuckets + index % subBuckets;
    return mantissa << shift;
}

std::uint64_t
LatencyHistogram::bucketMid(std::size_t index)
{
    if (index < subBuckets)
        return index;  // exact unit bucket
    const unsigned shift =
        static_cast<unsigned>(index / subBuckets) - 1;
    const std::uint64_t width = 1ull << shift;
    return bucketLow(index) + (width - 1) / 2;
}

void
LatencyHistogram::record(std::uint64_t value)
{
    buckets_[bucketIndex(value)] += 1;
    if (count_ == 0 || value < min_)
        min_ = value;
    max_ = std::max(max_, value);
    sum_ += value;
    count_ += 1;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < bucketCount; ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    count_ += other.count_;
}

std::uint64_t
LatencyHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    LIQUID_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of [0, 1]");
    // The rank-th smallest sample, 1-based; q = 0 degenerates to min.
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::min<double>(static_cast<double>(count_),
                                q * static_cast<double>(count_) + 0.5)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bucketCount; ++i) {
        seen += buckets_[i];
        if (seen >= rank)
            return std::clamp(bucketMid(i), min_, max_);
    }
    return max_;
}

json::Value
LatencyHistogram::distributionJson() const
{
    json::Value buckets = json::Value::array();
    for (std::size_t i = 0; i < bucketCount; ++i) {
        if (buckets_[i] == 0)
            continue;
        json::Value pair = json::Value::array();
        pair.push(json::Value(bucketMid(i)));
        pair.push(json::Value(buckets_[i]));
        buckets.push(std::move(pair));
    }
    return buckets;
}

} // namespace liquid::serve
