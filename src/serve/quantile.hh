/**
 * @file
 * Streaming latency quantile estimator for the serve subsystem.
 *
 * A fixed-size geometric histogram (HdrHistogram-style: 32 sub-buckets
 * per power of two) over unsigned microsecond samples. Recording is
 * O(1) with no allocation, quantiles are read by a cumulative walk,
 * and two histograms merge by adding bucket counts — which is what
 * lets per-worker recordings combine into one deterministic
 * distribution regardless of thread count.
 *
 * Error contract (tests/quantile_test.cc holds it): a bucket spans at
 * most a 1/32 relative range, so quantile() returns a value within
 * 3.2% relative error of the exact sorted-sample quantile (values
 * below 32 land in exact unit buckets and carry no error at all).
 * Merging loses nothing: record-then-merge and record-all-in-one
 * produce identical bucket contents, hence identical quantiles.
 */

#ifndef LIQUID_SERVE_QUANTILE_HH
#define LIQUID_SERVE_QUANTILE_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/json.hh"

namespace liquid::serve
{

/** Streaming histogram over microsecond samples. */
class LatencyHistogram
{
  public:
    /** Sub-buckets per power of two; bounds the relative error. */
    static constexpr unsigned subBucketBits = 5;
    static constexpr std::uint64_t subBuckets = 1ull << subBucketBits;
    /** Enough buckets for any 64-bit sample. */
    static constexpr std::size_t bucketCount =
        (64 - subBucketBits + 1) * subBuckets;

    /** Bucket index of @p value (exact below subBuckets). */
    static std::size_t bucketIndex(std::uint64_t value);

    /** Lowest value mapping to bucket @p index. */
    static std::uint64_t bucketLow(std::size_t index);

    /** Representative (midpoint) value of bucket @p index. */
    static std::uint64_t bucketMid(std::size_t index);

    void record(std::uint64_t value);

    /** Add @p other's samples to this histogram (lossless). */
    void merge(const LatencyHistogram &other);

    /**
     * Value at quantile @p q in [0, 1]: the representative of the
     * bucket holding the ceil(q * count)-th smallest sample, clamped
     * to the observed [min, max]. 0 when empty.
     */
    std::uint64_t quantile(double q) const;

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    std::uint64_t sum() const { return sum_; }
    /** Integer mean (sum / count); 0 when empty. */
    std::uint64_t mean() const { return count_ ? sum_ / count_ : 0; }

    /**
     * Non-empty buckets as [[representativeUs, count], ...] — the
     * latency-distribution artifact the nightly sweep uploads.
     */
    json::Value distributionJson() const;

  private:
    std::array<std::uint64_t, bucketCount> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace liquid::serve

#endif // LIQUID_SERVE_QUANTILE_HH
