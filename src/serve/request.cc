#include "serve/request.hh"

#include "common/logging.hh"

namespace liquid::serve
{

const char *
className(RequestClass cls)
{
    switch (cls) {
      case RequestClass::Simulate:
        return "simulate";
      case RequestClass::Verify:
        return "verify";
      case RequestClass::Scan:
        return "scan";
      case RequestClass::Chaos:
        return "chaos";
      case RequestClass::Proof:
        return "proof";
    }
    panic("unknown RequestClass");
}

RequestClass
classFromName(const std::string &name)
{
    for (RequestClass cls : allRequestClasses) {
        if (name == className(cls))
            return cls;
    }
    fatal("unknown request class '", name,
          "' (simulate, verify, scan, chaos, proof)");
}

std::string
Request::key() const
{
    return std::string(className(cls)) + ':' + job.key();
}

const char *
statusName(ResponseStatus status)
{
    switch (status) {
      case ResponseStatus::Ok:
        return "ok";
      case ResponseStatus::Cancelled:
        return "cancelled";
      case ResponseStatus::Rejected:
        return "rejected";
      case ResponseStatus::Failed:
        return "failed";
    }
    panic("unknown ResponseStatus");
}

const char *
sourceName(ResponseSource source)
{
    switch (source) {
      case ResponseSource::Executed:
        return "executed";
      case ResponseSource::HotCache:
        return "hot";
      case ResponseSource::ColdCache:
        return "cold";
      case ResponseSource::Coalesced:
        return "coalesced";
      case ResponseSource::None:
        return "none";
    }
    panic("unknown ResponseSource");
}

} // namespace liquid::serve
