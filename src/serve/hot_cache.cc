#include "serve/hot_cache.hh"

#include "common/logging.hh"

namespace liquid::serve
{

std::optional<Response>
HotCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        stats_.misses += 1;
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    stats_.hits += 1;
    return it->second->second;
}

void
HotCache::insert(const std::string &key, const Response &response)
{
    LIQUID_ASSERT(response.ok(),
                  "hot cache: only Ok responses are cacheable");
    if (entries_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        // Identical keys promise identical payloads; refresh recency.
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (lru_.size() >= entries_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        stats_.evictions += 1;
    }
    lru_.emplace_front(key, response);
    index_[key] = lru_.begin();
    stats_.insertions += 1;
}

HotCacheStats
HotCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace liquid::serve
