/**
 * @file
 * Deterministic open-loop load generation and the virtual-time service
 * model behind the serve subsystem's tail-latency reports.
 *
 * Wall-clock latency measurements can never be byte-identical across
 * runs, machines or thread counts, so regression-gating a p99 on them
 * means either huge tolerances or flaky CI. This harness takes the
 * TailBench idea — an integrated load generator measuring per-class
 * latency distributions — and makes it reproducible by splitting time
 * in two:
 *
 *  1. A seeded generator emits a request trace with integer *virtual*
 *     arrival times (open loop: arrivals never wait on completions).
 *     Same seed + spec => byte-identical trace, on any machine.
 *  2. Every distinct request key is executed once, in parallel, via
 *     the memoizing backend. Responses are pure functions of the key,
 *     so the thread count cannot change any payload — only how fast
 *     the wall clock gets there.
 *  3. A single-threaded discrete-event simulation replays the trace
 *     against a virtual server pool with the live Server's semantics
 *     (hot cache at the door, coalescing onto in-flight leaders, FIFO
 *     queue with capacity rejection, deadline cancellation at service
 *     start). Service time is derived from the response's
 *     deterministic work units, not from the wall clock.
 *
 * The resulting p50/p95/p99 per request class are exact functions of
 * (seed, spec) — identical bytes at --jobs 1 and --jobs 32 — which is
 * what lets BENCH_serve.json sit in CI next to BENCH_fig6.json.
 */

#ifndef LIQUID_SERVE_LOADGEN_HH
#define LIQUID_SERVE_LOADGEN_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "lab/results.hh"
#include "serve/hot_cache.hh"
#include "serve/quantile.hh"
#include "serve/request.hh"

namespace liquid::serve
{

/** Report schema identifier (see docs/SERVE.md for the layout). */
inline constexpr const char *serveSchema = "liquid-serve-v1";

/** Tool/model version stamped into reports. */
inline constexpr const char *serveVersion = "liquid-serve-2026.08-1";

/** Everything that determines a load run. Part of the report. */
struct LoadSpec
{
    std::uint64_t seed = 1;
    /** Offered load in requests per virtual second. */
    double qps = 200.0;
    /** Trace length in requests. */
    std::uint64_t requests = 64;
    /** Request classes the generator draws from; empty = all five. */
    std::vector<RequestClass> mix;
    /** Workloads drawn from; empty = {"fir", "lu", "fft"}. */
    std::vector<std::string> workloads;
    /** SIMD widths drawn from; empty = {4, 8}. */
    std::vector<unsigned> widths;
    /** Per-request latency budget in virtual us; 0 = none. */
    std::uint64_t deadlineUs = 0;
    /** Virtual service slots (the modelled worker pool). */
    unsigned virtualServers = 4;
    /** Queued-leader limit; arrivals beyond it are rejected. */
    std::size_t queueCapacity = 64;
    /** Hot-cache capacity in responses. */
    std::size_t hotCacheEntries = 256;
    /** Service time of a hot-cache hit (virtual us). */
    std::uint64_t hitCostUs = 5;
    /** Fixed per-execution overhead (dispatch, queueing machinery). */
    std::uint64_t overheadUs = 20;
    /** Backend work units consumed per virtual microsecond. */
    std::uint64_t unitsPerUs = 1000;

    json::Value toJson() const;
};

/**
 * Generate the request trace: integer inter-arrival gaps drawn
 * uniformly from [0, 2*mean] (mean = 1e6/qps us, zero gaps give
 * bursts), request fields drawn from the spec's mix/workload/width
 * axes. Pure function of the spec — see traceHash().
 */
std::vector<Request> generateTrace(const LoadSpec &spec);

/** FNV-1a over the canonical trace rendering; the determinism tests
 *  compare this across runs and thread counts. */
std::uint64_t traceHash(const std::vector<Request> &trace);

/** Per-class (and overall) outcome tallies from one load run. */
struct ClassStats
{
    /** Latency distribution over Ok responses, virtual us. */
    LatencyHistogram latency;
    std::uint64_t submitted = 0;
    std::uint64_t ok = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t rejected = 0;
    std::uint64_t failed = 0;
    std::uint64_t executed = 0;  ///< leaders that ran the backend
    std::uint64_t hotHits = 0;
    std::uint64_t coalesced = 0;

    void merge(const ClassStats &o);
    json::Value toJson(bool distribution) const;
};

/** Everything one load run produced. */
struct LoadReport
{
    LoadSpec spec;
    std::uint64_t traceHash = 0;
    /** className() -> stats; only classes present in the mix. */
    std::map<std::string, ClassStats> classes;
    /** All classes merged. */
    ClassStats all;
    /** Virtual time of the last completion (or last arrival). */
    std::uint64_t makespanUs = 0;
    /** Distinct request keys in the trace (memoized executions). */
    std::uint64_t distinctKeys = 0;
    HotCacheStats cache;

    double offeredQps() const { return spec.qps; }
    double achievedQps() const;

    /**
     * Full liquid-serve-v1 report document. @p distribution adds the
     * per-class [bucket-midpoint, count] latency histograms (the
     * nightly sweep uploads these as artifacts).
     */
    json::Value toJson(bool distribution = false) const;
};

/**
 * Run the virtual-time model over the spec's trace. @p jobs bounds the
 * parallel pre-execution of distinct keys (0 = hardware concurrency);
 * it cannot affect any reported byte.
 */
LoadReport runLoad(const LoadSpec &spec, unsigned jobs = 0);

/** One sweep operating point. */
struct SweepPoint
{
    double qps = 0.0;
    std::uint64_t p99Us = 0;
    std::uint64_t ok = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t rejected = 0;
    /** p99 within target and nothing rejected. */
    bool pass = false;
};

/** Sentinel us-per-op when no sweep point meets the target. */
inline constexpr std::uint64_t usPerOpFailSentinel = 1000000000;

/** A qps sweep against a p99 target: the saturation story. */
struct SweepReport
{
    std::uint64_t p99TargetUs = 0;
    std::vector<SweepPoint> points;
    std::vector<LoadReport> runs;  ///< same order as points
    /** Highest offered qps whose point passed; 0 = none. */
    double qpsAtTarget = 0.0;
    /**
     * Inverse throughput at the target, rounded virtual us per
     * request; usPerOpFailSentinel when nothing passed. Inverted so
     * the lab diff gate's increase=regression rule applies.
     */
    std::uint64_t usPerOpAtTarget = usPerOpFailSentinel;

    bool anyPass() const { return qpsAtTarget > 0.0; }

    json::Value toJson(bool distribution = false) const;
};

/** Run the spec at each qps in @p qpsList against @p p99TargetUs. */
SweepReport runSweep(const LoadSpec &spec,
                     const std::vector<double> &qpsList,
                     std::uint64_t p99TargetUs, unsigned jobs = 0);

/**
 * Render a load report (and optionally the sweep it came from) as a
 * liquid-lab-results-v2 ResultSet of synthetic functional-tier jobs
 * (experiment "serve", workload = class name / "all" / "sweep", every
 * metric a flattened integer counter, no cycle-shaped fields) so
 * BENCH_serve.json is gated by the existing `liquid-lab diff`
 * machinery exactly like BENCH_fig6.json.
 */
lab::ResultSet toLabResults(const LoadReport &report,
                            const SweepReport *sweep = nullptr);

} // namespace liquid::serve

#endif // LIQUID_SERVE_LOADGEN_HH
