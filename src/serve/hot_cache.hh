/**
 * @file
 * In-memory hot tier of the content-addressed result cache.
 *
 * The lab's on-disk ResultCache makes repeat *campaigns* cheap; under
 * a live request stream the disk round-trip itself is the latency
 * floor, so the serve subsystem promotes the same content-addressed
 * idea to a bounded in-memory LRU map from request key to finished
 * Response. Hit/miss/insert/evict counters are first-class — the
 * latency report and the cache-semantics tests read them — and every
 * operation is O(1) under one mutex, safe for the server's worker
 * threads (the single-threaded loadgen model shares the type).
 */

#ifndef LIQUID_SERVE_HOT_CACHE_HH
#define LIQUID_SERVE_HOT_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "serve/request.hh"

namespace liquid::serve
{

/** Monotonic counters; snapshot-copyable. */
struct HotCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
};

/** Bounded LRU response cache keyed by Request::key(). */
class HotCache
{
  public:
    /** @p entries = 0 disables the cache (every lookup misses). */
    explicit HotCache(std::size_t entries) : entries_(entries) {}

    std::size_t entries() const { return entries_; }

    /** Look up @p key, refreshing its recency on a hit. */
    std::optional<Response> lookup(const std::string &key);

    /**
     * Insert @p response under @p key, evicting the least recently
     * used entry at capacity. Callers only insert Ok responses — a
     * cancelled or failed request must never poison the cache, which
     * the server enforces and the cache asserts.
     */
    void insert(const std::string &key, const Response &response);

    HotCacheStats stats() const;

  private:
    using LruList = std::list<std::pair<std::string, Response>>;

    std::size_t entries_;
    mutable std::mutex mutex_;
    LruList lru_;  ///< front = most recently used
    std::unordered_map<std::string, LruList::iterator> index_;
    HotCacheStats stats_;
};

} // namespace liquid::serve

#endif // LIQUID_SERVE_HOT_CACHE_HH
