/**
 * @file
 * Execution backend for the serve subsystem: one entry point that
 * dispatches a Request to the pipeline that owns its class — the lab
 * job machinery (simulate), the static verifier (verify), whole-binary
 * discovery (scan), the fault-injection equivalence oracle (chaos) or
 * the symbolic translation validator (proof) — and condenses the
 * result into a Response.
 *
 * Every execution is a pure function of the request key: the payload
 * digest and the work-unit count are deterministic, bit-identical
 * across runs, threads and repeat executions. Work units are the
 * backend's deterministic service-demand measure (simulated cycles,
 * retired instructions, or analysis size scaled to the same order of
 * magnitude); the virtual-time service model turns them into service
 * durations, so tail-latency reports inherit the determinism.
 */

#ifndef LIQUID_SERVE_BACKEND_HH
#define LIQUID_SERVE_BACKEND_HH

#include <string>
#include <vector>

#include "lab/result_cache.hh"
#include "serve/request.hh"

namespace liquid::serve
{

/** Executes requests; stateless and safe to call concurrently. */
class Backend
{
  public:
    /** No cold tier: every execution runs the pipeline. */
    Backend() : cold_("") {}

    /**
     * With a cold tier: simulate requests consult the lab's on-disk
     * content-addressed result cache under @p coldCacheDir before
     * running, and persist fresh outcomes for the next process. The
     * other classes always execute (their pipelines are cheap relative
     * to a simulation). Empty string disables the tier.
     */
    explicit Backend(std::string coldCacheDir)
        : cold_(std::move(coldCacheDir))
    {
    }

    /**
     * Run one request to completion. Returns an Ok response carrying
     * the payload digest, work units and a one-line summary — or a
     * Failed response naming the error (a malformed payload never
     * takes the server down). Ok responses report source Executed, or
     * ColdCache when the cold tier supplied the outcome.
     */
    Response execute(const Request &request) const;

    /**
     * Execute every request, @p jobs at a time (0 = hardware
     * concurrency), results slot-indexed by input position — the same
     * discipline as the lab runner, so the output vector is identical
     * at any thread count.
     */
    std::vector<Response> executeAll(const std::vector<Request> &requests,
                                     unsigned jobs) const;

  private:
    lab::ResultCache cold_;
};

} // namespace liquid::serve

#endif // LIQUID_SERVE_BACKEND_HH
