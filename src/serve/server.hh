/**
 * @file
 * The long-lived in-process translation server.
 *
 * A Server owns a worker pool and an async job queue: submit() hands
 * back a std::future<Response> immediately and the work proceeds in
 * the background. Three mechanisms shape the tail:
 *
 *  - Hot cache: a bounded in-memory LRU of finished responses keyed by
 *    the content-addressed request key; hits complete at submit time
 *    without touching the queue.
 *  - Coalescing: a request whose key matches one already queued or
 *    executing attaches to it instead of enqueueing — one execution,
 *    N bit-identical responses, followers reporting source Coalesced
 *    and sharing the leader's fate (including cancellation).
 *  - Deadlines: a request still queued when its latency budget lapses
 *    is cancelled at dequeue — gracefully, with a Cancelled response
 *    delivered to every waiter and nothing inserted into any cache.
 *
 * Backpressure is explicit: submissions beyond queueCapacity are
 * rejected at the door with a Rejected response rather than growing
 * the queue without bound. stop() is graceful — the queue drains
 * before the workers exit.
 */

#ifndef LIQUID_SERVE_SERVER_HH
#define LIQUID_SERVE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/backend.hh"
#include "serve/hot_cache.hh"
#include "serve/request.hh"

namespace liquid::serve
{

struct ServerConfig
{
    /** Worker threads executing requests. */
    unsigned workers = 2;
    /** Queued-leader limit; submissions beyond it are Rejected. */
    std::size_t queueCapacity = 64;
    /** Hot-tier capacity in responses; 0 disables the hot cache. */
    std::size_t hotCacheEntries = 256;
    /** On-disk cold tier for simulate requests; "" disables. */
    std::string coldCacheDir;
};

/** Monotonic server counters; one unit = one submitted request. */
struct ServerStats
{
    std::uint64_t accepted = 0;   ///< entered the queue as a leader
    std::uint64_t coalesced = 0;  ///< attached to an in-flight leader
    std::uint64_t hotHits = 0;    ///< completed from the hot tier
    std::uint64_t coldHits = 0;   ///< leader served from the cold tier
    std::uint64_t executed = 0;   ///< leader ran the backend
    std::uint64_t cancelled = 0;  ///< deadline lapsed while queued
    std::uint64_t rejected = 0;   ///< queue full (or server stopping)
    std::uint64_t failed = 0;     ///< backend raised an error
    std::uint64_t completed = 0;  ///< responses delivered, any status
    std::uint64_t maxQueueDepth = 0;
};

class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Submit one request; returns a future that becomes ready when the
     * request completes (by execution, cache hit, coalescing,
     * cancellation or rejection — the future always resolves, never
     * throws). request.deadlineUs, when nonzero, is a wall-clock
     * budget measured from submission.
     */
    std::future<Response> submit(Request request);

    /** Block until every accepted request has completed. */
    void drain();

    /**
     * Graceful shutdown: stop accepting, drain the queue, join the
     * workers. Idempotent; the destructor calls it.
     */
    void stop();

    ServerStats stats() const;
    HotCacheStats hotCacheStats() const { return hot_.stats(); }

    /** Leaders currently waiting in the queue (excludes executing). */
    std::size_t queueDepth() const;

  private:
    /** One queue entry: a leader plus everyone coalesced onto it. */
    struct Pending
    {
        Request request;
        std::chrono::steady_clock::time_point submitted;
        std::vector<std::promise<Response>> waiters;
    };
    using PendingPtr = std::shared_ptr<Pending>;

    void workerMain();
    /** Deliver @p resp to every waiter (leader first, followers get
     *  source Coalesced). Caller holds the lock. */
    void deliver(Pending &pending, const Response &resp);

    ServerConfig config_;
    Backend backend_;
    HotCache hot_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_;  ///< workers: queue or stop
    std::condition_variable idleCv_;  ///< drain(): all quiet
    std::deque<PendingPtr> queue_;
    /** Keyed leaders, queued or executing — the coalescing map. */
    std::unordered_map<std::string, PendingPtr> inflight_;
    std::size_t executing_ = 0;
    bool stopping_ = false;
    ServerStats stats_;
    std::vector<std::thread> workers_;
};

} // namespace liquid::serve

#endif // LIQUID_SERVE_SERVER_HH
