#include "serve/server.hh"

#include <algorithm>

#include "common/logging.hh"

namespace liquid::serve
{

Server::Server(ServerConfig config)
    : config_(config), backend_(config.coldCacheDir),
      hot_(config.hotCacheEntries)
{
    const unsigned nw = std::max(1u, config_.workers);
    workers_.reserve(nw);
    for (unsigned w = 0; w < nw; ++w)
        workers_.emplace_back([this]() { workerMain(); });
}

Server::~Server()
{
    stop();
}

std::future<Response>
Server::submit(Request request)
{
    std::promise<Response> promise;
    std::future<Response> future = promise.get_future();
    const std::string key = request.key();

    // Hot tier first: a hit completes at the door, no queue traffic.
    // The cache only ever holds Ok responses, so a hit is always
    // servable. (HotCache has its own lock; counter updates below.)
    std::optional<Response> cached = hot_.lookup(key);

    std::lock_guard<std::mutex> lock(mutex_);
    if (cached) {
        cached->source = ResponseSource::HotCache;
        stats_.hotHits += 1;
        stats_.completed += 1;
        promise.set_value(std::move(*cached));
        return future;
    }

    if (stopping_) {
        Response resp;
        resp.status = ResponseStatus::Rejected;
        resp.error = "server is stopping";
        stats_.rejected += 1;
        stats_.completed += 1;
        promise.set_value(std::move(resp));
        return future;
    }

    // Coalesce onto an identical in-flight request — queued or already
    // executing — instead of doing the work twice.
    if (auto it = inflight_.find(key); it != inflight_.end()) {
        it->second->waiters.push_back(std::move(promise));
        stats_.coalesced += 1;
        return future;
    }

    if (queue_.size() >= config_.queueCapacity) {
        Response resp;
        resp.status = ResponseStatus::Rejected;
        resp.error = "queue at capacity";
        stats_.rejected += 1;
        stats_.completed += 1;
        promise.set_value(std::move(resp));
        return future;
    }

    auto pending = std::make_shared<Pending>();
    request.id = stats_.accepted;
    pending->request = std::move(request);
    pending->submitted = std::chrono::steady_clock::now();
    pending->waiters.push_back(std::move(promise));
    inflight_[key] = pending;
    queue_.push_back(std::move(pending));
    stats_.accepted += 1;
    stats_.maxQueueDepth =
        std::max<std::uint64_t>(stats_.maxQueueDepth, queue_.size());
    workCv_.notify_one();
    return future;
}

void
Server::deliver(Pending &pending, const Response &resp)
{
    bool leader = true;
    for (std::promise<Response> &waiter : pending.waiters) {
        Response copy = resp;
        if (!leader && copy.ok())
            copy.source = ResponseSource::Coalesced;
        waiter.set_value(std::move(copy));
        leader = false;
        stats_.completed += 1;
    }
    pending.waiters.clear();
}

void
Server::workerMain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        workCv_.wait(lock,
                     [this]() { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            // stopping_ and drained: graceful exit.
            return;
        }
        PendingPtr pending = std::move(queue_.front());
        queue_.pop_front();

        const std::string key = pending->request.key();

        // Deadline check at service start: a request whose budget
        // lapsed while it sat in the queue is cancelled — every waiter
        // notified, nothing executed, nothing cached.
        if (pending->request.deadlineUs != 0) {
            const auto waited =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() -
                    pending->submitted)
                    .count();
            if (static_cast<std::uint64_t>(waited) >
                pending->request.deadlineUs) {
                inflight_.erase(key);
                Response resp;
                resp.status = ResponseStatus::Cancelled;
                resp.error = "deadline lapsed in queue";
                stats_.cancelled += pending->waiters.size();
                deliver(*pending, resp);
                if (queue_.empty() && executing_ == 0)
                    idleCv_.notify_all();
                continue;
            }
        }

        // Execute outside the lock; the inflight entry stays so
        // identical submissions keep coalescing during execution.
        executing_ += 1;
        lock.unlock();
        const Response resp = backend_.execute(pending->request);
        lock.lock();
        executing_ -= 1;
        inflight_.erase(key);

        if (resp.ok()) {
            hot_.insert(key, resp);
            if (resp.source == ResponseSource::ColdCache)
                stats_.coldHits += 1;
            else
                stats_.executed += 1;
        } else {
            stats_.failed += 1;
        }
        deliver(*pending, resp);
        if (queue_.empty() && executing_ == 0)
            idleCv_.notify_all();
    }
}

void
Server::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this]() {
        return queue_.empty() && executing_ == 0;
    });
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ && workers_.empty())
            return;
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
Server::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

} // namespace liquid::serve
