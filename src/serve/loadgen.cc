#include "serve/loadgen.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"
#include "common/random.hh"
#include "serve/backend.hh"

namespace liquid::serve
{

namespace
{

/** Fill the draw axes and clamp degenerate knobs; pure. */
LoadSpec
withDefaults(LoadSpec spec)
{
    LIQUID_ASSERT(spec.qps > 0.0, "loadgen: qps must be positive");
    if (spec.mix.empty())
        spec.mix.assign(std::begin(allRequestClasses),
                        std::end(allRequestClasses));
    if (spec.workloads.empty())
        spec.workloads = {"fir", "lu", "fft"};
    if (spec.widths.empty())
        spec.widths = {4, 8};
    if (spec.virtualServers == 0)
        spec.virtualServers = 1;
    if (spec.unitsPerUs == 0)
        spec.unitsPerUs = 1;
    return spec;
}

} // namespace

std::vector<Request>
generateTrace(const LoadSpec &rawSpec)
{
    const LoadSpec spec = withDefaults(rawSpec);
    Rng rng(spec.seed);
    const std::uint64_t meanUs = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(1e6 / spec.qps)));

    std::vector<Request> trace;
    trace.reserve(spec.requests);
    std::uint64_t now = 0;
    for (std::uint64_t i = 0; i < spec.requests; ++i) {
        // Fixed draw order (class, workload, width, gap) — part of the
        // trace-format contract the determinism test hashes.
        Request r;
        r.cls = spec.mix[rng.next64() % spec.mix.size()];
        r.job.experiment = "serve";
        r.job.workload =
            spec.workloads[rng.next64() % spec.workloads.size()];
        r.job.mode = ExecMode::Liquid;
        r.job.width = static_cast<unsigned>(
            spec.widths[rng.next64() % spec.widths.size()]);
        r.arrivalUs = now;
        r.deadlineUs = spec.deadlineUs;
        r.id = i;
        trace.push_back(std::move(r));
        // Integer-only arrivals: uniform gap on [0, 2*mean] keeps the
        // offered rate while the zeros provide bursts. No libm in the
        // hot path, so the trace is identical on every platform.
        now += static_cast<std::uint64_t>(
            rng.range(0, static_cast<std::int64_t>(2 * meanUs)));
    }
    return trace;
}

std::uint64_t
traceHash(const std::vector<Request> &trace)
{
    std::ostringstream os;
    for (const Request &r : trace)
        os << r.id << '|' << className(r.cls) << '|' << r.job.key()
           << '|' << r.arrivalUs << '|' << r.deadlineUs << '\n';
    return lab::fnv1a(os.str());
}

void
ClassStats::merge(const ClassStats &o)
{
    latency.merge(o.latency);
    submitted += o.submitted;
    ok += o.ok;
    cancelled += o.cancelled;
    rejected += o.rejected;
    failed += o.failed;
    executed += o.executed;
    hotHits += o.hotHits;
    coalesced += o.coalesced;
}

json::Value
ClassStats::toJson(bool distribution) const
{
    json::Value v = json::Value::object();
    v.set("count", submitted);
    v.set("ok", ok);
    v.set("cancelled", cancelled);
    v.set("rejected", rejected);
    v.set("failed", failed);
    v.set("executed", executed);
    v.set("hotHits", hotHits);
    v.set("coalesced", coalesced);
    if (latency.count() > 0) {
        v.set("p50us", latency.quantile(0.50));
        v.set("p95us", latency.quantile(0.95));
        v.set("p99us", latency.quantile(0.99));
        v.set("minUs", latency.min());
        v.set("maxUs", latency.max());
    }
    if (distribution)
        v.set("distribution", latency.distributionJson());
    return v;
}

json::Value
LoadSpec::toJson() const
{
    json::Value v = json::Value::object();
    v.set("seed", seed);
    v.set("qps", qps);
    v.set("requests", requests);
    json::Value mixArr = json::Value::array();
    for (RequestClass c : mix)
        mixArr.push(json::Value(className(c)));
    v.set("mix", std::move(mixArr));
    json::Value wls = json::Value::array();
    for (const std::string &w : workloads)
        wls.push(json::Value(w));
    v.set("workloads", std::move(wls));
    json::Value ws = json::Value::array();
    for (unsigned w : widths)
        ws.push(json::Value(w));
    v.set("widths", std::move(ws));
    v.set("deadlineUs", deadlineUs);
    v.set("virtualServers", virtualServers);
    v.set("queueCapacity", static_cast<std::uint64_t>(queueCapacity));
    v.set("hotCacheEntries",
          static_cast<std::uint64_t>(hotCacheEntries));
    v.set("hitCostUs", hitCostUs);
    v.set("overheadUs", overheadUs);
    v.set("unitsPerUs", unitsPerUs);
    return v;
}

double
LoadReport::achievedQps() const
{
    if (makespanUs == 0)
        return 0.0;
    return static_cast<double>(all.ok) * 1e6 /
           static_cast<double>(makespanUs);
}

json::Value
LoadReport::toJson(bool distribution) const
{
    json::Value v = json::toolReport(serveSchema, serveVersion);
    v.set("kind", "loadgen");
    v.set("spec", spec.toJson());
    v.set("traceHash", traceHash);
    v.set("makespanUs", makespanUs);
    v.set("offeredQps", offeredQps());
    v.set("achievedQps", achievedQps());
    v.set("distinctKeys", distinctKeys);
    json::Value cacheV = json::Value::object();
    cacheV.set("hits", cache.hits);
    cacheV.set("misses", cache.misses);
    cacheV.set("insertions", cache.insertions);
    cacheV.set("evictions", cache.evictions);
    v.set("cache", std::move(cacheV));
    json::Value cls = json::Value::object();
    cls.set("all", all.toJson(distribution));
    for (const auto &[name, stats] : classes)
        cls.set(name, stats.toJson(distribution));
    v.set("classes", std::move(cls));
    return v;
}

LoadReport
runLoad(const LoadSpec &rawSpec, unsigned jobs)
{
    const LoadSpec spec = withDefaults(rawSpec);
    const std::vector<Request> trace = generateTrace(spec);

    // Memoized parallel pre-execution: every distinct key runs the
    // backend exactly once, slot-indexed, so the thread count cannot
    // change a single payload byte. The virtual-time replay below then
    // decides which of those executions "happened" and when.
    std::unordered_map<std::string, std::size_t> keySlot;
    std::vector<Request> unique;
    std::vector<std::string> keys(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        keys[i] = trace[i].key();
        if (keySlot.emplace(keys[i], unique.size()).second)
            unique.push_back(trace[i]);
    }
    const Backend backend;
    const std::vector<Response> responses =
        backend.executeAll(unique, jobs);
    auto responseFor = [&](std::size_t i) -> const Response & {
        return responses[keySlot.at(keys[i])];
    };

    LoadReport report;
    report.spec = spec;
    report.traceHash = serve::traceHash(trace);
    report.distinctKeys = unique.size();

    // --- single-threaded virtual-time replay (live-Server semantics:
    // hot tier at the door, coalescing while in flight, FIFO queue
    // with capacity rejection, deadline checked at service start) ---
    struct Inflight
    {
        std::size_t leader;
        std::vector<std::size_t> followers;
    };
    struct Event
    {
        std::uint64_t timeUs;
        std::uint64_t seq;
        std::string key;
    };
    auto later = [](const Event &a, const Event &b) {
        return a.timeUs != b.timeUs ? a.timeUs > b.timeUs
                                    : a.seq > b.seq;
    };
    std::priority_queue<Event, std::vector<Event>, decltype(later)>
        events(later);
    std::uint64_t eventSeq = 0;
    std::unordered_map<std::string, Inflight> inflight;
    std::deque<std::string> waitQueue;
    HotCache hot(spec.hotCacheEntries);
    unsigned freeServers = spec.virtualServers;
    std::uint64_t lastCompletionUs = 0;

    auto classOf = [&](std::size_t i) -> ClassStats & {
        return report.classes[className(trace[i].cls)];
    };
    auto recordOk = [&](std::size_t i, std::uint64_t latencyUs,
                        bool hotHit, bool follower) {
        ClassStats &cs = classOf(i);
        cs.ok += 1;
        cs.latency.record(latencyUs);
        if (hotHit)
            cs.hotHits += 1;
        if (follower)
            cs.coalesced += 1;
    };
    auto serviceUs = [&](const Response &resp) {
        return spec.overheadUs +
               (resp.workUnits + spec.unitsPerUs - 1) / spec.unitsPerUs;
    };
    auto startService = [&](const std::string &key,
                            std::uint64_t startUs) {
        const Inflight &e = inflight.at(key);
        events.push(Event{startUs + serviceUs(responseFor(e.leader)),
                          eventSeq++, key});
        freeServers -= 1;
    };
    auto complete = [&](const Event &ev) {
        const std::uint64_t now = ev.timeUs;
        lastCompletionUs = std::max(lastCompletionUs, now);
        {
            const Inflight e = std::move(inflight.at(ev.key));
            inflight.erase(ev.key);
            const Response &resp = responseFor(e.leader);
            classOf(e.leader).executed += 1;
            if (resp.ok()) {
                hot.insert(ev.key, resp);
                recordOk(e.leader, now - trace[e.leader].arrivalUs,
                         false, false);
                for (std::size_t f : e.followers)
                    recordOk(f, now - trace[f].arrivalUs, false, true);
            } else {
                classOf(e.leader).failed += 1;
                for (std::size_t f : e.followers) {
                    ClassStats &cs = classOf(f);
                    cs.coalesced += 1;
                    cs.failed += 1;
                }
            }
        }
        freeServers += 1;
        // The freed slot pulls from the FIFO queue; budgets that
        // lapsed while waiting cancel here — never executed, never
        // cached, followers sharing the leader's fate.
        while (freeServers > 0 && !waitQueue.empty()) {
            const std::string key = std::move(waitQueue.front());
            waitQueue.pop_front();
            const Inflight &q = inflight.at(key);
            const Request &lead = trace[q.leader];
            if (lead.deadlineUs != 0 &&
                now > lead.arrivalUs + lead.deadlineUs) {
                classOf(q.leader).cancelled += 1;
                for (std::size_t f : q.followers) {
                    ClassStats &cs = classOf(f);
                    cs.coalesced += 1;
                    cs.cancelled += 1;
                }
                inflight.erase(key);
                continue;
            }
            startService(key, now);
        }
    };

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Request &req = trace[i];
        // Completions never see later arrivals: at a tie the finisher
        // runs first, so its freed slot and hot-cache insert are
        // visible to the request arriving at the same microsecond.
        while (!events.empty() &&
               events.top().timeUs <= req.arrivalUs) {
            const Event ev = events.top();
            events.pop();
            complete(ev);
        }
        classOf(i).submitted += 1;
        const std::string &key = keys[i];
        if (hot.lookup(key)) {
            recordOk(i, spec.hitCostUs, true, false);
            lastCompletionUs = std::max(lastCompletionUs,
                                        req.arrivalUs + spec.hitCostUs);
            continue;
        }
        if (auto it = inflight.find(key); it != inflight.end()) {
            it->second.followers.push_back(i);
            continue;
        }
        if (freeServers > 0) {
            inflight.emplace(key, Inflight{i, {}});
            startService(key, req.arrivalUs);
        } else if (waitQueue.size() >= spec.queueCapacity) {
            classOf(i).rejected += 1;
        } else {
            inflight.emplace(key, Inflight{i, {}});
            waitQueue.push_back(key);
        }
    }
    while (!events.empty()) {
        const Event ev = events.top();
        events.pop();
        complete(ev);
    }
    LIQUID_ASSERT(waitQueue.empty(),
                  "loadgen: queued work survived the drain");

    for (const auto &[name, stats] : report.classes)
        report.all.merge(stats);
    report.cache = hot.stats();
    report.makespanUs = std::max(
        lastCompletionUs, trace.empty() ? 0 : trace.back().arrivalUs);
    return report;
}

json::Value
SweepReport::toJson(bool distribution) const
{
    json::Value v = json::toolReport(serveSchema, serveVersion);
    v.set("kind", "sweep");
    v.set("p99TargetUs", p99TargetUs);
    v.set("qpsAtTarget", qpsAtTarget);
    v.set("usPerOpAtTarget", usPerOpAtTarget);
    json::Value pts = json::Value::array();
    for (const SweepPoint &p : points) {
        json::Value pv = json::Value::object();
        pv.set("qps", p.qps);
        pv.set("p99us", p.p99Us);
        pv.set("ok", p.ok);
        pv.set("cancelled", p.cancelled);
        pv.set("rejected", p.rejected);
        pv.set("pass", p.pass);
        pts.push(std::move(pv));
    }
    v.set("points", std::move(pts));
    json::Value runsArr = json::Value::array();
    for (const LoadReport &run : runs)
        runsArr.push(run.toJson(distribution));
    v.set("runs", std::move(runsArr));
    return v;
}

SweepReport
runSweep(const LoadSpec &spec, const std::vector<double> &qpsList,
         std::uint64_t p99TargetUs, unsigned jobs)
{
    LIQUID_ASSERT(!qpsList.empty(), "sweep: need at least one qps");
    SweepReport sweep;
    sweep.p99TargetUs = p99TargetUs;
    for (double qps : qpsList) {
        LoadSpec pointSpec = spec;
        pointSpec.qps = qps;
        LoadReport run = runLoad(pointSpec, jobs);
        SweepPoint pt;
        pt.qps = qps;
        pt.p99Us = run.all.latency.count() > 0
                       ? run.all.latency.quantile(0.99)
                       : 0;
        pt.ok = run.all.ok;
        pt.cancelled = run.all.cancelled;
        pt.rejected = run.all.rejected;
        // The contract: every request answered (none shed, none past
        // its budget) and the tail inside the target.
        pt.pass = run.all.ok > 0 && pt.p99Us <= p99TargetUs &&
                  run.all.rejected == 0 && run.all.cancelled == 0;
        if (pt.pass && pt.qps > sweep.qpsAtTarget)
            sweep.qpsAtTarget = pt.qps;
        sweep.points.push_back(pt);
        sweep.runs.push_back(std::move(run));
    }
    if (sweep.qpsAtTarget > 0.0)
        sweep.usPerOpAtTarget = static_cast<std::uint64_t>(
            std::llround(1e6 / sweep.qpsAtTarget));
    return sweep;
}

lab::ResultSet
toLabResults(const LoadReport &report, const SweepReport *sweep)
{
    auto makeRow = [](const std::string &workload) {
        lab::JobResult r;
        r.job.experiment = "serve";
        r.job.workload = workload;
        r.job.mode = ExecMode::ScalarBaseline;
        r.job.width = 0;
        // Functional tier: these synthetic rows carry no cycle clock,
        // only flattened serve.* counters — absent, not zero.
        r.job.tier = fast::ExecTier::Functional;
        r.outcome.hasCycles = false;
        return r;
    };
    auto statRow = [&](const std::string &workload,
                       const ClassStats &cs) {
        lab::JobResult r = makeRow(workload);
        std::map<std::string, std::uint64_t> &c = r.outcome.counters;
        c["serve.count"] = cs.submitted;
        c["serve.ok"] = cs.ok;
        c["serve.cancelled"] = cs.cancelled;
        c["serve.rejected"] = cs.rejected;
        c["serve.failed"] = cs.failed;
        c["serve.executed"] = cs.executed;
        c["serve.hotHits"] = cs.hotHits;
        c["serve.coalesced"] = cs.coalesced;
        if (cs.latency.count() > 0) {
            c["serve.p50us"] = cs.latency.quantile(0.50);
            c["serve.p95us"] = cs.latency.quantile(0.95);
            c["serve.p99us"] = cs.latency.quantile(0.99);
            c["serve.maxUs"] = cs.latency.max();
        }
        return r;
    };

    lab::ResultSet set;
    set.add(statRow("all", report.all));
    for (const auto &[name, stats] : report.classes)
        set.add(statRow(name, stats));
    if (sweep) {
        lab::JobResult r = makeRow("sweep");
        std::map<std::string, std::uint64_t> &c = r.outcome.counters;
        c["serve.points"] =
            static_cast<std::uint64_t>(sweep->points.size());
        c["serve.p99TargetUs"] = sweep->p99TargetUs;
        c["serve.qpsAtTargetX100"] = static_cast<std::uint64_t>(
            std::llround(sweep->qpsAtTarget * 100.0));
        c["serve.usPerOpAtTarget"] = sweep->usPerOpAtTarget;
        set.add(r);
    }
    set.sortByKey();
    return set;
}

} // namespace liquid::serve
