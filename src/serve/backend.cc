#include "serve/backend.hh"

#include <atomic>
#include <sstream>
#include <thread>

#include "chaos/fault_schedule.hh"
#include "chaos/oracle.hh"
#include "common/logging.hh"
#include "lab/lab.hh"
#include "lab/results.hh"
#include "verifier/proof.hh"
#include "verifier/scan.hh"
#include "verifier/verifier.hh"

namespace liquid::serve
{

namespace
{

/** Digest accumulator: fnv1a over a canonical text rendering. */
class Digest
{
  public:
    template <typename T>
    Digest &
    operator<<(const T &part)
    {
        os_ << part << '|';
        return *this;
    }

    std::uint64_t value() const { return lab::fnv1a(os_.str()); }

  private:
    std::ostringstream os_;
};

Response
runSimulate(const Request &request, const lab::ResultCache &cold)
{
    lab::JobResult result;
    result.job = request.job;
    bool fromCold = false;
    std::string hash;
    if (cold.enabled()) {
        const Workload::Build build = lab::buildJob(request.job);
        hash = lab::contentHash(request.job, build,
                                request.job.config());
        if (std::optional<lab::RunOutcome> outcome = cold.load(hash)) {
            result.outcome = std::move(*outcome);
            fromCold = true;
        }
    }
    if (!fromCold) {
        result.outcome = lab::runJob(request.job);
        if (cold.enabled())
            cold.store(hash, request.job, result.outcome);
    }

    Response resp;
    if (fromCold)
        resp.source = ResponseSource::ColdCache;
    resp.digest = result.digest();
    // Service demand: the simulated clock (cycle tier) or the retired
    // instruction count (functional tier, which has no clock), scaled
    // so the default small-kernel mix lands in the same 100us-5ms
    // virtual service band as the analysis classes (unitsPerUs 1000).
    resp.workUnits = 10 * (result.outcome.hasCycles
                               ? result.outcome.cycles
                               : result.outcome.counters.at("fast.insts"));
    std::ostringstream os;
    if (result.outcome.hasCycles)
        os << result.outcome.cycles << " cycles, "
           << result.outcome.translations << " translations";
    else
        os << result.outcome.counters.at("fast.insts")
           << " insts (functional)";
    resp.summary = os.str();
    return resp;
}

Response
runVerify(const Request &request)
{
    const Workload::Build build = lab::buildJob(request.job);
    VerifyOptions opts;
    opts.config.simdWidth = request.job.width ? request.job.width : 8;
    const ProgramReport report = verifyProgram(build.prog, opts);

    Response resp;
    Digest digest;
    std::uint64_t analyzed = 0;
    unsigned ok = 0, warn = 0, error = 0;
    for (const RegionReport &region : report.regions) {
        digest << region.entryLabel << severityName(region.verdict)
               << abortReasonName(region.reason)
               << region.predictedWidth << region.predictedUcode
               << region.analyzedInsts;
        analyzed += region.analyzedInsts;
        ok += region.verdict == Severity::Ok;
        warn += region.verdict == Severity::Warn;
        error += region.verdict == Severity::Error;
    }
    resp.digest = digest.value();
    // Static analysis walks abstract retires; scale them to the same
    // order as scaled simulated cycles so class latencies are
    // comparable.
    resp.workUnits = 600 * analyzed + 300 * build.prog.code().size();
    std::ostringstream os;
    os << report.regions.size() << " regions: " << ok << " ok, " << warn
       << " warn, " << error << " error";
    resp.summary = os.str();
    return resp;
}

Response
runScan(const Request &request)
{
    const Workload::Build build = lab::buildJob(request.job);
    ScanOptions opts;
    opts.widths = {request.job.width ? request.job.width : 8};
    const ScanReport report = scanProgram(build.prog, opts);

    Response resp;
    Digest digest;
    for (const ScanRegion &region : report.regions) {
        digest << region.entryLabel
               << severityName(region.overallVerdict())
               << region.candidate << region.bestWidth
               << region.blockCount << region.loopCount;
    }
    resp.digest = digest.value();
    // Discovery + liveness fixpoint + one-width prediction over the
    // whole binary: dominated by program size.
    resp.workUnits = 2400 * build.prog.code().size();
    std::ostringstream os;
    os << report.regions.size() << " functions, "
       << report.candidateCount() << " candidates";
    resp.summary = os.str();
    return resp;
}

/** Deterministic fingerprint of a final architectural state. */
std::uint64_t
snapshotDigest(const ArchSnapshot &snap)
{
    Digest digest;
    for (Word w : snap.memory)
        digest << w;
    for (Word w : snap.scalars)
        digest << w;
    digest << snap.cmpState;
    for (const auto &[addr, count] : snap.callCounts)
        digest << addr << count;
    return digest.value();
}

Response
runChaos(const Request &request)
{
    if (request.job.mode != ExecMode::Liquid)
        fatal("serve: chaos requests run Liquid mode (got ",
              lab::modeName(request.job.mode), ")");
    const std::string scheduleKey =
        request.job.over.faults ? *request.job.over.faults : "int@40";
    const FaultSchedule sched = FaultSchedule::parse(scheduleKey);
    const Workload::Build build = lab::buildJob(request.job);
    const unsigned width = request.job.width ? request.job.width : 8;
    const ChaosReference ref = makeReference(build.prog, width);
    const ChaosReport report =
        checkSchedule(ref, build.prog, width, sched);

    Response resp;
    Digest digest;
    digest << scheduleKey << report.equal << report.cycles
           << report.faultsFired << report.retranslations
           << snapshotDigest(report.finalState);
    resp.digest = digest.value();
    // Scalar reference + Liquid run + word-for-word state compare.
    resp.workUnits = 6 * ref.instsRetired + 3 * report.cycles;
    std::ostringstream os;
    os << scheduleKey << ": " << (report.equal ? "equal" : "DIVERGED")
       << ", " << report.faultsFired << " faults, "
       << report.retranslations << " retranslations";
    resp.summary = os.str();
    return resp;
}

Response
runProof(const Request &request)
{
    const Workload::Build build = lab::buildJob(request.job);
    ProofOptions opts;
    opts.widths = {request.job.width ? request.job.width : 8};
    const ProgramProof proof = proveProgram(build.prog, opts);

    Response resp;
    Digest digest;
    for (const RegionProof &region : proof.regions) {
        digest << region.entryLabel
               << proofVerdictName(region.overall());
        for (const WidthProof &w : region.widths)
            digest << w.width << proofVerdictName(w.verdict);
    }
    resp.digest = digest.value();
    // Symbolic interpretation of scalar region + microcode per width;
    // far heavier per instruction than abstract interpretation.
    resp.workUnits = 18000 * build.prog.code().size();
    std::ostringstream os;
    os << proof.regions.size() << " regions: "
       << proof.count(ProofVerdict::Proved) << " proved, "
       << proof.count(ProofVerdict::Refuted) << " refuted, "
       << proof.count(ProofVerdict::Unknown) << " unknown";
    resp.summary = os.str();
    return resp;
}

} // namespace

Response
Backend::execute(const Request &request) const
{
    try {
        Response resp;
        switch (request.cls) {
          case RequestClass::Simulate:
            resp = runSimulate(request, cold_);
            break;
          case RequestClass::Verify:
            resp = runVerify(request);
            break;
          case RequestClass::Scan:
            resp = runScan(request);
            break;
          case RequestClass::Chaos:
            resp = runChaos(request);
            break;
          case RequestClass::Proof:
            resp = runProof(request);
            break;
        }
        resp.status = ResponseStatus::Ok;
        if (resp.source == ResponseSource::None)
            resp.source = ResponseSource::Executed;
        return resp;
    } catch (const FatalError &e) {
        Response resp;
        resp.status = ResponseStatus::Failed;
        resp.error = e.what();
        return resp;
    }
}

std::vector<Response>
Backend::executeAll(const std::vector<Request> &requests,
                    unsigned jobs) const
{
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    const std::size_t n = requests.size();
    std::vector<Response> slots(n);
    if (n == 0)
        return slots;

    // Slot-indexed results off a shared ticket counter: execution
    // order is thread-schedule-dependent, the output vector is not.
    std::atomic<std::size_t> ticket{0};
    auto workerMain = [&]() {
        while (true) {
            const std::size_t index =
                ticket.fetch_add(1, std::memory_order_relaxed);
            if (index >= n)
                return;
            slots[index] = execute(requests[index]);
        }
    };

    const unsigned nw = static_cast<unsigned>(
        std::min<std::size_t>(jobs, n));
    if (nw <= 1) {
        workerMain();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(nw);
        for (unsigned w = 0; w < nw; ++w)
            threads.emplace_back(workerMain);
        for (auto &t : threads)
            t.join();
    }
    return slots;
}

} // namespace liquid::serve
