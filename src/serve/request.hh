/**
 * @file
 * Request/response types for the serve subsystem.
 *
 * A Request names one unit of work from any of the repo's analysis
 * pipelines — simulate (the lab job machinery), verify (static
 * Table-1 conformance), scan (whole-binary discovery), chaos (the
 * fault-injection equivalence oracle) or proof (symbolic translation
 * validation) — plus service metadata: a virtual arrival time, an
 * optional deadline and a client id. The payload reuses lab::Job
 * verbatim, so a simulate request is exactly a lab matrix job and the
 * canonical request key is content-addressed the same way job keys
 * are: two requests with equal keys are referentially transparent
 * (identical outcomes), which is what makes coalescing and the hot
 * cache sound.
 */

#ifndef LIQUID_SERVE_REQUEST_HH
#define LIQUID_SERVE_REQUEST_HH

#include <cstdint>
#include <string>

#include "lab/spec.hh"

namespace liquid::serve
{

/** The request classes the server accepts. */
enum class RequestClass : std::uint8_t
{
    Simulate,  ///< run a lab::Job on the simulator
    Verify,    ///< static Table-1 + depcheck verdicts for a workload
    Scan,      ///< hint-less whole-binary region discovery
    Chaos,     ///< equivalence oracle under a fault schedule
    Proof,     ///< symbolic translation validation
};

inline constexpr RequestClass allRequestClasses[] = {
    RequestClass::Simulate, RequestClass::Verify, RequestClass::Scan,
    RequestClass::Chaos, RequestClass::Proof,
};

/** Canonical class name: "simulate", "verify", ... */
const char *className(RequestClass cls);

/** Parse a className(); fatal() on unknown names. */
RequestClass classFromName(const std::string &name);

/** One unit of service work. */
struct Request
{
    RequestClass cls = RequestClass::Simulate;
    /**
     * The work payload. Simulate/chaos use every field (chaos reads
     * its fault schedule from job.over.faults); verify/scan/proof use
     * workload and width. job.experiment is by convention "serve".
     */
    lab::Job job;
    /** Virtual arrival time (loadgen); unused by the live server. */
    std::uint64_t arrivalUs = 0;
    /** Latency budget after arrival; 0 = none. A request still queued
     *  when the budget lapses is cancelled, never executed. */
    std::uint64_t deadlineUs = 0;
    /** Trace position (loadgen) / submission ticket (server). */
    std::uint64_t id = 0;

    /**
     * Content-addressed identity, e.g. "simulate:serve/fir/liquid/w8"
     * — equal keys promise equal responses. Arrival, deadline and id
     * are service metadata and deliberately not part of it.
     */
    std::string key() const;
};

/** How a request left the server. */
enum class ResponseStatus : std::uint8_t
{
    Ok,         ///< executed (or served from cache/coalescing)
    Cancelled,  ///< deadline lapsed before service began
    Rejected,   ///< queue at capacity on arrival
    Failed,     ///< the backend raised an error
};

const char *statusName(ResponseStatus status);

/** Where an Ok response's payload came from. */
enum class ResponseSource : std::uint8_t
{
    Executed,   ///< backend ran the work
    HotCache,   ///< in-memory hot tier
    ColdCache,  ///< on-disk content-addressed result cache
    Coalesced,  ///< attached to an identical in-flight request
    None,       ///< no payload (cancelled/rejected/failed)
};

const char *sourceName(ResponseSource source);

/** What the server returns for one request. */
struct Response
{
    ResponseStatus status = ResponseStatus::Ok;
    ResponseSource source = ResponseSource::None;
    /**
     * Deterministic fingerprint of the full result payload (fnv1a of
     * its canonical serialization). Responses to identical requests
     * are bit-identical, so their digests are equal — the coalescing
     * and cache tests key on this.
     */
    std::uint64_t digest = 0;
    /**
     * Deterministic service demand in abstract work units (simulated
     * cycles, retired instructions or analysis size depending on the
     * class) — the virtual-time service model divides this by
     * unitsPerUs to get a service duration.
     */
    std::uint64_t workUnits = 0;
    /** One-line human-readable result summary. */
    std::string summary;
    /** Failure diagnostics when status == Failed. */
    std::string error;

    bool ok() const { return status == ResponseStatus::Ok; }
};

} // namespace liquid::serve

#endif // LIQUID_SERVE_REQUEST_HH
