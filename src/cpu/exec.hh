/**
 * @file
 * Pure evaluation semantics for scalar and vector operations, shared by
 * the core, the golden-model interpreters in tests, and the translator's
 * verification logic. Float semantics are selected by the destination
 * register class (paper-style `mult f2, f2, f0`); bitwise operations
 * always act on raw bits.
 */

#ifndef LIQUID_CPU_EXEC_HH
#define LIQUID_CPU_EXEC_HH

#include "common/types.hh"
#include "cpu/regfile.hh"
#include "isa/instruction.hh"

namespace liquid
{

/** Signed 16-bit saturation bounds used by qadd/qsub (audio-style). */
inline constexpr SWord satMax = 32767;
inline constexpr SWord satMin = -32768;

/**
 * Evaluate a scalar data-processing operation.
 * @param use_float float semantics for the arithmetic subset.
 */
Word evalScalarOp(Opcode op, Word a, Word b, bool use_float);

/** Compare for cmp: sign of (a - b), float-aware. */
int evalCompare(Word a, Word b, bool use_float);

/** Elementwise vector op over @p width lanes. */
VecValue evalVectorOp(Opcode op, const VecValue &a, const VecValue &b,
                      unsigned width, bool use_float);

/** Vector op against a periodic constant vector. */
VecValue evalVectorConstOp(Opcode op, const VecValue &a,
                           const ConstVec &cv, unsigned width,
                           bool use_float);

/** Reduction: fold @p width lanes of @p v into @p acc. */
Word evalReduction(Opcode red_op, Word acc, const VecValue &v,
                   unsigned width, bool use_float);

/** Block-periodic permutation. */
VecValue evalPerm(const VecValue &src, PermKind kind, unsigned block,
                  unsigned width);

/** Lane masking: keep lane i iff bit (i % block) of @p bits is set. */
VecValue evalMask(const VecValue &src, std::uint32_t bits, unsigned block,
                  unsigned width);

/** The inverse permutation kind (store-side permutations). */
PermKind permInverse(PermKind kind);

} // namespace liquid

#endif // LIQUID_CPU_EXEC_HH
