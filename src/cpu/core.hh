/**
 * @file
 * The processor model: an in-order, single-issue five-stage pipeline in
 * the style of the ARM-926EJ-S the paper simulates, extended with a
 * parameterized SIMD accelerator datapath and a microcode-dispatch front
 * end (paper Figure 1).
 *
 * The model is execute-at-retire: each instruction is functionally
 * executed and charged its cycle cost in program order. Retired
 * instructions are exposed on a retire bus (RetireSink) that the
 * post-retirement dynamic translator listens to.
 */

#ifndef LIQUID_CPU_CORE_HH
#define LIQUID_CPU_CORE_HH

#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <vector>

#include "asm/program.hh"
#include "chaos/fault_schedule.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/regfile.hh"
#include "memory/cache.hh"
#include "memory/main_memory.hh"
#include "memory/ucode_cache.hh"

namespace liquid
{

/** Core and memory-hierarchy configuration. */
struct CoreConfig
{
    /** SIMD accelerator vector width in 32-bit lanes; 0 = none. */
    unsigned simdWidth = 0;
    /** Dispatch translated microcode on hits (Liquid SIMD mode). */
    bool translationEnabled = true;

    Cycles missPenalty = 60;
    unsigned busBytesPerCycle = 16;  ///< SIMD memory datapath width
    unsigned takenBranchPenalty = 2;
    unsigned floatAddLatency = 1;    ///< extra cycles for float add/sub
    unsigned floatMulLatency = 3;    ///< extra cycles for float mul

    CacheConfig icache{};
    CacheConfig dcache{};

    /**
     * Failure injection: deterministic schedule of external events
     * (interrupts, microcode-cache flush/evict, SMC stores, data-cache
     * perturbation). FaultSchedule::periodic(N) reproduces the old
     * interruptPeriod knob exactly.
     */
    FaultSchedule faults{};

    /**
     * Deliberately WRONG hardware model, used only by the chaos
     * sabotage test: an interrupt arriving while microcode executes
     * abandons the region mid-flight (skipping the remaining lanes)
     * instead of letting it complete. The equivalence oracle must
     * catch the missing architectural state.
     */
    bool sabotageAbandonUcodeOnInterrupt = false;

    /** Watchdog: panic after this many retired instructions. */
    std::uint64_t maxInsts = 2'000'000'000ull;
};

/** Everything the retire bus reports about one retired instruction. */
struct RetireInfo
{
    const Inst *inst = nullptr;
    int index = -1;       ///< static instruction index
    bool executed = true; ///< condition held
    Word value = 0;       ///< result / loaded / stored value
    Addr memAddr = invalidAddr;
    bool branchTaken = false;
};

/** Listener on the retire bus (implemented by the dynamic translator). */
class RetireSink
{
  public:
    virtual ~RetireSink() = default;

    /** A scalar-mode instruction retired. */
    virtual void onRetire(const RetireInfo &info, Cycles now) = 0;
    /** A bl retired and control entered the outlined function. */
    virtual void onCall(Addr callee_entry, bool hinted,
                        unsigned width_hint, Cycles now) = 0;
    /** A ret retired. */
    virtual void onReturn(Cycles now) = 0;
    /** External abort: interrupt / context switch. */
    virtual void onInterrupt(Cycles now) = 0;
};

/** The processor core. */
class Core
{
  public:
    Core(const CoreConfig &config, const Program &prog, MainMemory &mem);

    /** Attach the post-retirement translator (may be null). */
    void setRetireSink(RetireSink *sink) { sink_ = sink; }

    /**
     * Front-end microcode lookup: given an outlined function's entry
     * address and the current cycle, return ready microcode or null.
     */
    using UcodeLookup =
        std::function<const UcodeEntry *(Addr, Cycles)>;
    void setUcodeLookup(UcodeLookup lookup) { ucodeLookup_ = lookup; }

    /**
     * Receiver for scheduled fault events the core cannot service
     * itself (microcode-cache flush/evict, SMC stores). The System
     * installs this because it owns the microcode cache and the
     * translator; interrupts and data-cache perturbation are handled
     * core-locally. Events with no handler are counted and dropped.
     */
    using FaultHandler = std::function<void(const FaultEvent &, Cycles)>;
    void setFaultHandler(FaultHandler handler)
    {
        faultHandler_ = std::move(handler);
    }

    /** Run from the program's "main" label (or index 0) until halt. */
    void run();

    /**
     * Execute one outlined region in isolation: run from instruction
     * @p entry_index until its ret. Used by the offline translator's
     * sandbox.
     */
    void runRegion(int entry_index);

    /** Run a single instruction; returns false once halted. */
    bool step();

    /**
     * Stream an execution trace: one line per retired instruction
     * (cycle, pc or microcode index, disassembly). Null disables.
     */
    void setTrace(std::ostream *os) { trace_ = os; }

    Cycles cycles() const { return cycles_; }
    bool halted() const { return halted_; }
    /** Current program counter (static instruction index). */
    int pc() const { return pc_; }
    /** Instructions retired so far (program and microcode). */
    std::uint64_t instsRetired() const { return instsRetired_; }

    /**
     * Adopt architectural state from a functional fast-forward prefix
     * (fast/warmup.hh): registers, pc, halt state, call stack, retire
     * count (keeps the watchdog and retire-keyed fault events at their
     * absolute positions; @p next_fault_index skips events the prefix
     * already fired) and the call-log shape. Synthesized call stamps
     * are 0 — the prefix had no cycle clock. Must be called before
     * the core runs.
     */
    void adoptArchState(const RegFile &regs, int pc, bool halted,
                        const std::vector<int> &call_stack,
                        std::uint64_t insts_retired,
                        std::size_t next_fault_index,
                        const std::map<Addr, std::uint64_t> &call_counts);

    RegFile &regs() { return regs_; }
    const RegFile &regs() const { return regs_; }

    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /**
     * Cycle of each bl to each target (first few per target) — drives
     * the paper's Table 6 (time between consecutive calls of outlined
     * hot loops).
     */
    const std::map<Addr, std::vector<Cycles>> &callLog() const
    {
        return callLog_;
    }

    /**
     * Destructively claim the call log. Large sweeps harvest it from a
     * finished Core without copying one vector per call site; the core
     * must not run further afterwards.
     */
    std::map<Addr, std::vector<Cycles>>
    takeCallLog()
    {
        return std::move(callLog_);
    }

    const CoreConfig &config() const { return config_; }

  private:
    void execute(const Inst &inst);
    void executeVector(const Inst &inst);
    void chargeScalarMem(const Inst &inst, Addr ea);
    void chargeVectorMem(Addr ea, unsigned bytes, bool is_write);
    bool readsReg(const Inst &inst, RegId reg) const;
    const ConstVec &resolveCvec(const Inst &inst) const;
    void retire(const RetireInfo &info);
    Addr memEA(const Inst &inst) const;
    void raiseFault(const FaultEvent &event);

    CoreConfig config_;
    const Program &prog_;
    MainMemory &mem_;
    RegFile regs_;
    Cache icache_;
    Cache dcache_;
    StatGroup stats_;

    RetireSink *sink_ = nullptr;
    UcodeLookup ucodeLookup_;
    FaultHandler faultHandler_;

    /** callStack_ marker used by runRegion(). */
    static constexpr int regionSentinel = -2;

    int pc_ = 0;
    std::vector<int> callStack_;
    bool halted_ = false;
    Cycles cycles_ = 0;
    std::uint64_t instsRetired_ = 0;

    // Microcode execution state. The dispatched entry is latched by
    // value — modelling the hardware microcode execution buffer — so
    // cache flushes or evictions mid-region (chaos fault events) never
    // affect the instructions already being executed.
    std::optional<UcodeEntry> ucode_;
    unsigned upc_ = 0;
    int ucodeReturn_ = 0;

    // Load-use interlock tracking.
    RegId pendingLoadDst_;

    Cycles nextInterrupt_ = 0;
    std::size_t nextFault_ = 0;  ///< index into config_.faults.events
    std::map<Addr, std::vector<Cycles>> callLog_;
    std::ostream *trace_ = nullptr;
};

} // namespace liquid

#endif // LIQUID_CPU_CORE_HH
