/**
 * @file
 * Architectural register state: 32 scalar registers (r0..r15, f0..f15),
 * 32 vector registers (v0..v15, vf0..vf15) of up to 16 32-bit lanes,
 * and the condition flags.
 */

#ifndef LIQUID_CPU_REGFILE_HH
#define LIQUID_CPU_REGFILE_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace liquid
{

/** Maximum SIMD width any accelerator configuration may use. */
inline constexpr unsigned maxSimdWidth = 16;

/** One vector register's lanes. */
using VecValue = std::array<Word, maxSimdWidth>;

/** Architectural register file. */
class RegFile
{
  public:
    RegFile() { reset(); }

    void
    reset()
    {
        scalars_.fill(0);
        for (auto &v : vectors_)
            v.fill(0);
        cmpState_ = 0;
    }

    Word
    read(RegId reg) const
    {
        LIQUID_ASSERT(reg.isScalar(), "scalar read of ", regName(reg));
        return scalars_[scalarIndex(reg)];
    }

    void
    write(RegId reg, Word value)
    {
        LIQUID_ASSERT(reg.isScalar(), "scalar write of ", regName(reg));
        scalars_[scalarIndex(reg)] = value;
    }

    const VecValue &
    readVec(RegId reg) const
    {
        LIQUID_ASSERT(reg.isVector(), "vector read of ", regName(reg));
        return vectors_[vectorIndex(reg)];
    }

    void
    writeVec(RegId reg, const VecValue &value)
    {
        LIQUID_ASSERT(reg.isVector(), "vector write of ", regName(reg));
        vectors_[vectorIndex(reg)] = value;
    }

    /** Condition state from the last cmp: sign of (src1 - src2). */
    int cmpState() const { return cmpState_; }
    void setCmpState(int s) { cmpState_ = s; }

    /** Evaluate a condition against the current flags. */
    bool
    condHolds(Cond cond) const
    {
        switch (cond) {
          case Cond::AL: return true;
          case Cond::EQ: return cmpState_ == 0;
          case Cond::NE: return cmpState_ != 0;
          case Cond::LT: return cmpState_ < 0;
          case Cond::LE: return cmpState_ <= 0;
          case Cond::GT: return cmpState_ > 0;
          case Cond::GE: return cmpState_ >= 0;
        }
        return true;
    }

  private:
    static unsigned
    scalarIndex(RegId reg)
    {
        return (reg.cls() == RegClass::Flt ? regsPerClass : 0) + reg.idx();
    }

    static unsigned
    vectorIndex(RegId reg)
    {
        return (reg.cls() == RegClass::VFlt ? regsPerClass : 0) + reg.idx();
    }

    std::array<Word, 2 * regsPerClass> scalars_;
    std::array<VecValue, 2 * regsPerClass> vectors_;
    int cmpState_ = 0;
};

} // namespace liquid

#endif // LIQUID_CPU_REGFILE_HH
