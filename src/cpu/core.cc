#include "cpu/core.hh"

#include <algorithm>
#include <iomanip>

#include "common/bitfield.hh"
#include "cpu/exec.hh"

namespace liquid
{

Core::Core(const CoreConfig &config, const Program &prog, MainMemory &mem)
    : config_(config), prog_(prog), mem_(mem),
      icache_("icache", config.icache), dcache_("dcache", config.dcache),
      stats_("core")
{
    pc_ = prog_.hasLabel("main") ? prog_.labelIndex("main") : 0;
    nextInterrupt_ = config_.faults.interruptPeriod;
}

void
Core::run()
{
    while (step()) {
    }
}

void
Core::adoptArchState(const RegFile &regs, int pc, bool halted,
                     const std::vector<int> &call_stack,
                     std::uint64_t insts_retired,
                     std::size_t next_fault_index,
                     const std::map<Addr, std::uint64_t> &call_counts)
{
    LIQUID_ASSERT(instsRetired_ == 0 && cycles_ == 0,
                  "adoptArchState on a core that already ran");
    regs_ = regs;
    pc_ = pc;
    halted_ = halted;
    callStack_ = call_stack;
    instsRetired_ = insts_retired;
    nextFault_ =
        std::min(next_fault_index, config_.faults.events.size());
    callLog_.clear();
    for (const auto &[target, count] : call_counts) {
        // The log caps at 8 stamps per target; pre-checkpoint calls
        // carry stamp 0 (the functional prefix has no cycle clock).
        callLog_[target] = std::vector<Cycles>(
            static_cast<std::size_t>(std::min<std::uint64_t>(count, 8)),
            0);
    }
}

void
Core::runRegion(int entry_index)
{
    pc_ = entry_index;
    callStack_.assign(1, regionSentinel);
    halted_ = false;
    while (step()) {
    }
}

bool
Core::step()
{
    if (halted_)
        return false;

    if (instsRetired_ >= config_.maxInsts)
        panic("instruction watchdog exceeded (", config_.maxInsts, ")");

    // Failure injection: the fault schedule delivers external events.
    // The periodic interrupt fires on cycle counts (the legacy
    // interruptPeriod semantics); one-shot events fire on retire
    // counts so schedules replay independently of cycle-level timing.
    const FaultSchedule &faults = config_.faults;
    if (faults.interruptPeriod && cycles_ >= nextInterrupt_) {
        nextInterrupt_ += faults.interruptPeriod;
        raiseFault(FaultEvent{FaultKind::Interrupt, instsRetired_,
                              invalidAddr});
    }
    while (nextFault_ < faults.events.size() &&
           faults.events[nextFault_].atRetire <= instsRetired_) {
        raiseFault(faults.events[nextFault_]);
        ++nextFault_;
    }

    const Inst *inst = nullptr;
    if (ucode_) {
        if (upc_ >= ucode_->insts.size()) {
            // Microcode region complete; resume after the bl.
            pc_ = ucodeReturn_;
            ucode_.reset();
            cycles_ += config_.takenBranchPenalty;
            return true;
        }
        inst = &ucode_->insts[upc_];
        stats_.inc("ucodeInsts");
    } else {
        LIQUID_ASSERT(pc_ >= 0 &&
                      static_cast<std::size_t>(pc_) < prog_.code().size(),
                      "pc out of range: ", pc_);
        inst = &prog_.code()[pc_];
        // Microcode is fetched from its own SRAM; only program-mode
        // instructions touch the i-cache.
        if (!icache_.access(Program::instAddr(pc_), false))
            cycles_ += config_.missPenalty;
    }

    ++instsRetired_;
    cycles_ += 1 + inst->info().extraLatency;
    stats_.inc("insts");

    if (trace_) {
        *trace_ << std::setw(10) << cycles_ << (ucode_ ? "  u" : "   ")
                << std::setw(5) << (ucode_ ? static_cast<int>(upc_) : pc_)
                << "  " << inst->toString() << '\n';
    }

    execute(*inst);
    return !halted_;
}

void
Core::raiseFault(const FaultEvent &event)
{
    stats_.inc(std::string("faults.") + faultKindName(event.kind));

    switch (event.kind) {
      case FaultKind::Interrupt:
        stats_.inc("interrupts");
        if (ucode_ && config_.sabotageAbandonUcodeOnInterrupt) {
            // Deliberately broken model (chaos sabotage test only):
            // drop the remaining microcode lanes on the floor.
            pc_ = ucodeReturn_;
            ucode_.reset();
        }
        if (sink_)
            sink_->onInterrupt(cycles_);
        return;

      case FaultKind::DcachePerturb:
        dcache_.flush();
        return;

      case FaultKind::UcodeFlush:
      case FaultKind::UcodeEvict:
      case FaultKind::SmcStore:
        if (faultHandler_)
            faultHandler_(event, cycles_);
        else
            stats_.inc("faults.unhandled");
        return;

      case FaultKind::NumKinds:
        break;
    }
    panic("bad fault kind");
}

Addr
Core::memEA(const Inst &inst) const
{
    const unsigned esize = inst.elemSize();
    std::int64_t index = inst.mem.disp;
    if (inst.mem.index.isValid())
        index += static_cast<SWord>(regs_.read(inst.mem.index));
    return inst.mem.base + static_cast<Addr>(index * esize);
}

bool
Core::readsReg(const Inst &inst, RegId reg) const
{
    if (!reg.isValid())
        return false;
    if (inst.isStore() && inst.src1 == reg)
        return true;
    if (inst.isDataProc() &&
        ((inst.src1 == reg) || (!inst.hasImm && inst.src2 == reg)))
        return true;
    if (inst.isMem() && inst.mem.index == reg)
        return true;
    return false;
}

const ConstVec &
Core::resolveCvec(const Inst &inst) const
{
    LIQUID_ASSERT(inst.cvec != noCvec);
    if (ucode_) {
        LIQUID_ASSERT(inst.cvec < ucode_->cvecs.size(),
                      "bad ucode cvec id");
        return ucode_->cvecs[inst.cvec];
    }
    return prog_.cvec(inst.cvec);
}

void
Core::chargeScalarMem(const Inst &inst, Addr ea)
{
    if (!dcache_.access(ea, inst.isStore())) {
        cycles_ += config_.missPenalty;
        stats_.inc("dcacheMissCycles", config_.missPenalty);
    }
}

void
Core::chargeVectorMem(Addr ea, unsigned bytes, bool is_write)
{
    // The SIMD datapath moves busBytesPerCycle per cycle; the first beat
    // is covered by the instruction's base cycle.
    const unsigned beats = static_cast<unsigned>(
        divCeil(bytes, config_.busBytesPerCycle));
    if (beats > 1)
        cycles_ += beats - 1;
    const unsigned misses = dcache_.accessRange(ea, bytes, is_write);
    cycles_ += static_cast<Cycles>(misses) * config_.missPenalty;
    if (misses) {
        stats_.inc("dcacheMissCycles",
                   static_cast<Cycles>(misses) * config_.missPenalty);
    }
}

void
Core::retire(const RetireInfo &info)
{
    if (sink_ && !ucode_)
        sink_->onRetire(info, cycles_);
}

void
Core::execute(const Inst &inst)
{
    const OpInfo &info = inst.info();

    RetireInfo ri;
    ri.inst = &inst;
    ri.index = ucode_ ? -1 : pc_;

    // Load-use interlock: one stall cycle when the previous instruction
    // was a load whose destination we consume.
    if (pendingLoadDst_.isValid() && readsReg(inst, pendingLoadDst_)) {
        cycles_ += 1;
        stats_.inc("loadUseStalls");
    }
    pendingLoadDst_ = RegId::invalid();

    const bool executed = regs_.condHolds(inst.cond);
    ri.executed = executed;

    auto advance = [this] {
        if (ucode_)
            ++upc_;
        else
            ++pc_;
    };

    if (info.isVector) {
        stats_.inc("vectorInsts");
        if (executed)
            executeVector(inst);
        advance();
        retire(ri);
        return;
    }
    stats_.inc("scalarInsts");

    switch (inst.op) {
      case Opcode::Nop:
        advance();
        break;

      case Opcode::Halt:
        halted_ = true;
        advance();
        break;

      case Opcode::Mov: {
        const Word value = inst.hasImm ? static_cast<Word>(inst.imm)
                                       : regs_.read(inst.src1);
        if (executed)
            regs_.write(inst.dst, value);
        ri.value = value;
        advance();
        break;
      }

      case Opcode::Cmp: {
        const Word a = regs_.read(inst.src1);
        const Word b = inst.hasImm ? static_cast<Word>(inst.imm)
                                   : regs_.read(inst.src2);
        if (executed)
            regs_.setCmpState(evalCompare(a, b, inst.src1.isFloat()));
        advance();
        break;
      }

      case Opcode::B: {
        stats_.inc("branches");
        if (executed) {
            LIQUID_ASSERT(inst.target >= 0, "unresolved branch");
            ri.branchTaken = true;
            stats_.inc("takenBranches");
            cycles_ += config_.takenBranchPenalty;
            if (ucode_)
                upc_ = static_cast<unsigned>(inst.target);
            else
                pc_ = inst.target;
        } else {
            advance();
        }
        break;
      }

      case Opcode::Bl: {
        LIQUID_ASSERT(!ucode_, "bl inside microcode");
        LIQUID_ASSERT(inst.target >= 0, "unresolved bl");
        stats_.inc("calls");
        const Addr entry = Program::instAddr(inst.target);
        auto &log = callLog_[entry];
        if (log.size() < 8)
            log.push_back(cycles_);

        cycles_ += config_.takenBranchPenalty;

        if (config_.translationEnabled && config_.simdWidth > 0 &&
            ucodeLookup_) {
            if (const UcodeEntry *entry_uc =
                    ucodeLookup_(entry, cycles_)) {
                // Microcode may be bound to a narrower width than the
                // accelerator (width fallback for short loops).
                LIQUID_ASSERT(entry_uc->simdWidth <= config_.simdWidth,
                              "microcode wider than accelerator");
                stats_.inc("ucodeDispatches");
                ucode_ = *entry_uc;
                upc_ = 0;
                ucodeReturn_ = pc_ + 1;
                // The bl itself retired; the translator must not see it
                // as a region entry (the region runs as microcode).
                break;
            }
        }

        callStack_.push_back(pc_ + 1);
        pc_ = inst.target;
        // The bl is the region boundary marker, not part of the
        // region: it reaches the translator via onCall only.
        if (sink_)
            sink_->onCall(entry, inst.hinted, inst.blWidthHint, cycles_);
        return;
      }

      case Opcode::Ret: {
        LIQUID_ASSERT(!ucode_, "ret inside microcode");
        LIQUID_ASSERT(!callStack_.empty(), "ret with empty call stack");
        cycles_ += config_.takenBranchPenalty;
        const int return_to = callStack_.back();
        callStack_.pop_back();
        if (sink_)
            sink_->onReturn(cycles_);
        if (return_to == regionSentinel)
            halted_ = true;  // runRegion() finished
        else
            pc_ = return_to;
        return;
      }

      default: {
        if (info.isLoad) {
            const Addr ea = memEA(inst);
            chargeScalarMem(inst, ea);
            const Word value =
                mem_.readElem(ea, info.memElemSize, info.memSigned);
            if (executed) {
                regs_.write(inst.dst, value);
                pendingLoadDst_ = inst.dst;
            }
            ri.value = value;
            ri.memAddr = ea;
            advance();
            break;
        }
        if (info.isStore) {
            const Addr ea = memEA(inst);
            chargeScalarMem(inst, ea);
            const Word value = regs_.read(inst.src1);
            if (executed)
                mem_.writeElem(ea, info.memElemSize, value);
            ri.value = value;
            ri.memAddr = ea;
            advance();
            break;
        }
        if (info.isDataProc) {
            const Word a = regs_.read(inst.src1);
            const Word b = inst.hasImm ? static_cast<Word>(inst.imm)
                                       : regs_.read(inst.src2);
            const Word value =
                evalScalarOp(inst.op, a, b, inst.dst.isFloat());
            if (inst.dst.isFloat()) {
                cycles_ += inst.op == Opcode::Mul
                               ? config_.floatMulLatency
                               : config_.floatAddLatency;
            }
            if (executed)
                regs_.write(inst.dst, value);
            ri.value = value;
            advance();
            break;
        }
        panic("unhandled opcode ", opName(inst.op));
      }
    }

    retire(ri);
}

void
Core::executeVector(const Inst &inst)
{
    const unsigned width = ucode_ ? ucode_->simdWidth
                                  : config_.simdWidth;
    if (width == 0) {
        fatal("vector instruction '", inst.toString(),
              "' but no SIMD accelerator configured");
    }

    const OpInfo &info = inst.info();
    const bool use_float = inst.dst.isFloat();

    if (info.isLoad) {
        const Addr ea = memEA(inst);
        chargeVectorMem(ea, width * info.memElemSize, false);
        VecValue value{};
        for (unsigned l = 0; l < width; ++l) {
            value[l] = mem_.readElem(ea + l * info.memElemSize,
                                     info.memElemSize, info.memSigned);
        }
        regs_.writeVec(inst.dst, value);
        pendingLoadDst_ = inst.dst;
        return;
    }

    if (info.isStore) {
        const Addr ea = memEA(inst);
        chargeVectorMem(ea, width * info.memElemSize, true);
        const VecValue &value = regs_.readVec(inst.src1);
        for (unsigned l = 0; l < width; ++l) {
            mem_.writeElem(ea + l * info.memElemSize, info.memElemSize,
                           value[l]);
        }
        return;
    }

    if (info.isReduction) {
        const Word acc = regs_.read(inst.src1);
        const Word out = evalReduction(inst.op, acc,
                                       regs_.readVec(inst.src2), width,
                                       inst.dst.isFloat());
        regs_.write(inst.dst, out);
        return;
    }

    switch (inst.op) {
      case Opcode::Vperm:
        regs_.writeVec(inst.dst,
                       evalPerm(regs_.readVec(inst.src1), inst.permKind,
                                inst.permBlock, width));
        return;
      case Opcode::Vmask:
        regs_.writeVec(inst.dst,
                       evalMask(regs_.readVec(inst.src1), inst.maskBits,
                                inst.maskBlock, width));
        return;
      default:
        break;
    }

    LIQUID_ASSERT(info.isDataProc, "unhandled vector opcode ",
                  opName(inst.op));

    if (use_float) {
        cycles_ += inst.op == Opcode::Vmul ? config_.floatMulLatency
                                           : config_.floatAddLatency;
    }

    VecValue out{};
    if (inst.cvec != noCvec) {
        out = evalVectorConstOp(inst.op, regs_.readVec(inst.src1),
                                resolveCvec(inst), width, use_float);
    } else if (inst.hasImm) {
        VecValue imm{};
        imm.fill(static_cast<Word>(inst.imm));
        out = evalVectorOp(inst.op, regs_.readVec(inst.src1), imm, width,
                           use_float);
    } else {
        out = evalVectorOp(inst.op, regs_.readVec(inst.src1),
                           regs_.readVec(inst.src2), width, use_float);
    }
    regs_.writeVec(inst.dst, out);
}

} // namespace liquid
