#include "cpu/exec.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace liquid
{

namespace
{

// Saturation clamps the 32-bit *wrapped* sum/difference, not the
// widened one: the architectural definition of qadd/qsub is the scalar
// cmp/conditional-mov idiom the scalarizer emits (add, clamp to
// [satMin, satMax]), and the translator rewrites that idiom to
// Vqadd/Vqsub claiming bit-exact equivalence — which only holds if the
// vector op reproduces the idiom's wraparound on 32-bit overflow.
// (Found by liquid-proof translation validation and confirmed by the
// chaos oracle: widen-then-clamp diverges at e.g. INT_MAX + 1.)

Word
satAdd(Word a, Word b)
{
    const SWord sum = static_cast<SWord>(a + b);
    return static_cast<Word>(std::clamp<SWord>(sum, satMin, satMax));
}

Word
satSub(Word a, Word b)
{
    const SWord diff = static_cast<SWord>(a - b);
    return static_cast<Word>(std::clamp<SWord>(diff, satMin, satMax));
}

} // namespace

Word
evalScalarOp(Opcode op, Word a, Word b, bool use_float)
{
    if (use_float) {
        const float fa = bitsToFloat(a);
        const float fb = bitsToFloat(b);
        switch (op) {
          case Opcode::Add: return floatToBits(fa + fb);
          case Opcode::Sub: return floatToBits(fa - fb);
          case Opcode::Rsb: return floatToBits(fb - fa);
          case Opcode::Mul: return floatToBits(fa * fb);
          case Opcode::Min: return floatToBits(std::min(fa, fb));
          case Opcode::Max: return floatToBits(std::max(fa, fb));
          default:
            break;  // bitwise and shifts fall through to raw handling
        }
    }

    const SWord sa = static_cast<SWord>(a);
    const SWord sb = static_cast<SWord>(b);
    switch (op) {
      case Opcode::Mov: return b;
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::Rsb: return b - a;
      case Opcode::Mul: return a * b;
      case Opcode::And: return a & b;
      case Opcode::Orr: return a | b;
      case Opcode::Eor: return a ^ b;
      case Opcode::Bic: return a & ~b;
      case Opcode::Lsl: return b >= 32 ? 0 : a << (b & 31);
      case Opcode::Lsr: return b >= 32 ? 0 : a >> (b & 31);
      case Opcode::Asr:
        return static_cast<Word>(sa >> std::min<Word>(b, 31));
      case Opcode::Min: return static_cast<Word>(std::min(sa, sb));
      case Opcode::Max: return static_cast<Word>(std::max(sa, sb));
      case Opcode::Qadd: return satAdd(a, b);
      case Opcode::Qsub: return satSub(a, b);
      default:
        panic("evalScalarOp: not a data-processing opcode: ", opName(op));
    }
}

int
evalCompare(Word a, Word b, bool use_float)
{
    if (use_float) {
        const float fa = bitsToFloat(a);
        const float fb = bitsToFloat(b);
        return fa < fb ? -1 : (fa == fb ? 0 : 1);
    }
    const SWord sa = static_cast<SWord>(a);
    const SWord sb = static_cast<SWord>(b);
    return sa < sb ? -1 : (sa == sb ? 0 : 1);
}

VecValue
evalVectorOp(Opcode op, const VecValue &a, const VecValue &b,
             unsigned width, bool use_float)
{
    const Opcode scalar_op = opInfo(op).scalarEquiv;
    LIQUID_ASSERT(scalar_op != Opcode::Nop,
                  "no scalar equivalent for ", opName(op));
    VecValue out{};
    for (unsigned i = 0; i < width; ++i)
        out[i] = evalScalarOp(scalar_op, a[i], b[i], use_float);
    return out;
}

VecValue
evalVectorConstOp(Opcode op, const VecValue &a, const ConstVec &cv,
                  unsigned width, bool use_float)
{
    const Opcode scalar_op = opInfo(op).scalarEquiv;
    LIQUID_ASSERT(scalar_op != Opcode::Nop);
    LIQUID_ASSERT(!cv.lanes.empty());
    VecValue out{};
    for (unsigned i = 0; i < width; ++i) {
        out[i] = evalScalarOp(scalar_op, a[i], cv.lanes[i % cv.lanes.size()],
                              use_float);
    }
    return out;
}

Word
evalReduction(Opcode red_op, Word acc, const VecValue &v, unsigned width,
              bool use_float)
{
    const Opcode scalar_op = opInfo(red_op).scalarEquiv;
    LIQUID_ASSERT(scalar_op != Opcode::Nop,
                  "bad reduction opcode ", opName(red_op));
    Word out = acc;
    for (unsigned i = 0; i < width; ++i)
        out = evalScalarOp(scalar_op, out, v[i], use_float);
    return out;
}

VecValue
evalPerm(const VecValue &src, PermKind kind, unsigned block,
         unsigned width)
{
    LIQUID_ASSERT(block >= 2 && block <= width && width % block == 0,
                  "permutation block ", block, " illegal at width ", width);
    VecValue out{};
    for (unsigned i = 0; i < width; ++i) {
        const unsigned base = (i / block) * block;
        out[i] = src[base + permSourceLane(kind, block, i % block)];
    }
    return out;
}

VecValue
evalMask(const VecValue &src, std::uint32_t bits, unsigned block,
         unsigned width)
{
    LIQUID_ASSERT(block >= 1 && block <= width,
                  "mask block ", block, " illegal at width ", width);
    VecValue out{};
    for (unsigned i = 0; i < width; ++i)
        out[i] = ((bits >> (i % block)) & 1u) ? src[i] : 0;
    return out;
}

PermKind
permInverse(PermKind kind)
{
    switch (kind) {
      case PermKind::SwapHalves:
      case PermKind::SwapPairs:
      case PermKind::Reverse:
        return kind;  // involutions
      case PermKind::RotUp:
        return PermKind::RotDown;
      case PermKind::RotDown:
        return PermKind::RotUp;
      case PermKind::NumKinds:
        break;
    }
    panic("bad permutation kind");
}

} // namespace liquid
