/**
 * @file
 * Tiny statistics registry, modelled loosely on gem5's stats package.
 * Components own named counters; a StatGroup can be dumped as text or
 * queried by tests and the benchmark harnesses.
 */

#ifndef LIQUID_COMMON_STATS_HH
#define LIQUID_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace liquid
{

/**
 * A named bag of 64-bit counters with hierarchical dotted names.
 *
 * Every StatGroup is owned by exactly one component of one System —
 * there are deliberately no process-global groups, which is what makes
 * it safe for the lab runner to simulate many Systems concurrently.
 * The type is therefore move-only: copying a live group would alias
 * counters across owners; consumers that want a snapshot read the
 * counters() map or merge() into their own group.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;
    StatGroup(StatGroup &&) = default;
    StatGroup &operator=(StatGroup &&) = default;

    /** Add @p delta to counter @p stat (creates it at zero). */
    void
    inc(const std::string &stat, std::uint64_t delta = 1)
    {
        counters_[stat] += delta;
    }

    /** Overwrite counter @p stat. */
    void
    set(const std::string &stat, std::uint64_t value)
    {
        counters_[stat] = value;
    }

    /** Read a counter; missing counters read as zero. */
    std::uint64_t
    get(const std::string &stat) const
    {
        auto it = counters_.find(stat);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Reset every counter to zero. */
    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second = 0;
    }

    /**
     * Accumulate another group's counters into this one (suite-total
     * aggregation in the lab results layer). Counter names are merged;
     * the other group is not modified.
     */
    void
    merge(const StatGroup &other)
    {
        for (const auto &[stat, value] : other.counters_)
            counters_[stat] += value;
    }

    const std::string &name() const { return name_; }

    const std::map<std::string, std::uint64_t> &
    counters() const
    {
        return counters_;
    }

    /** Const-correct iteration: for (const auto &[stat, value] : g). */
    auto begin() const { return counters_.begin(); }
    auto end() const { return counters_.end(); }

    /** Dump "group.stat value" lines. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &kv : counters_)
            os << name_ << '.' << kv.first << ' ' << kv.second << '\n';
    }

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace liquid

#endif // LIQUID_COMMON_STATS_HH
