/**
 * @file
 * Minimal JSON value / writer / parser for the lab results layer and
 * the CLI tools. Deliberately small: objects preserve insertion order
 * (so serialization is deterministic and diffs are stable), numbers
 * are int64 or double, and doubles round-trip via std::to_chars
 * shortest form so the same value always prints the same bytes.
 */

#ifndef LIQUID_COMMON_JSON_HH
#define LIQUID_COMMON_JSON_HH

#include <charconv>
#include <cstdint>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace liquid::json
{

/** One JSON value. Objects keep keys in insertion order. */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    Value() = default;
    Value(std::nullptr_t) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Value(std::uint64_t v)
        : kind_(Kind::Int), int_(static_cast<std::int64_t>(v))
    {
    }
    Value(int v) : kind_(Kind::Int), int_(v) {}
    Value(unsigned v) : kind_(Kind::Int), int_(v) {}
    Value(double v) : kind_(Kind::Double), double_(v) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}

    /** Make an empty array / object. */
    static Value
    array()
    {
        Value v;
        v.kind_ = Kind::Array;
        return v;
    }

    static Value
    object()
    {
        Value v;
        v.kind_ = Kind::Object;
        return v;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }

    bool
    asBool() const
    {
        LIQUID_ASSERT(kind_ == Kind::Bool, "json: not a bool");
        return bool_;
    }

    std::int64_t
    asInt() const
    {
        if (kind_ == Kind::Double)
            return static_cast<std::int64_t>(double_);
        LIQUID_ASSERT(kind_ == Kind::Int, "json: not a number");
        return int_;
    }

    std::uint64_t asUint() const
    {
        return static_cast<std::uint64_t>(asInt());
    }

    double
    asDouble() const
    {
        if (kind_ == Kind::Int)
            return static_cast<double>(int_);
        LIQUID_ASSERT(kind_ == Kind::Double, "json: not a number");
        return double_;
    }

    const std::string &
    asString() const
    {
        LIQUID_ASSERT(kind_ == Kind::String, "json: not a string");
        return str_;
    }

    // ---- array -----------------------------------------------------------

    const std::vector<Value> &
    items() const
    {
        LIQUID_ASSERT(kind_ == Kind::Array, "json: not an array");
        return arr_;
    }

    void
    push(Value v)
    {
        LIQUID_ASSERT(kind_ == Kind::Array, "json: not an array");
        arr_.push_back(std::move(v));
    }

    // ---- object ----------------------------------------------------------

    const std::vector<std::pair<std::string, Value>> &
    members() const
    {
        LIQUID_ASSERT(kind_ == Kind::Object, "json: not an object");
        return obj_;
    }

    /** Append (or overwrite) a member. */
    void
    set(const std::string &key, Value v)
    {
        LIQUID_ASSERT(kind_ == Kind::Object, "json: not an object");
        for (auto &kv : obj_) {
            if (kv.first == key) {
                kv.second = std::move(v);
                return;
            }
        }
        obj_.emplace_back(key, std::move(v));
    }

    /** Member lookup; null when missing. */
    const Value *
    find(const std::string &key) const
    {
        if (kind_ != Kind::Object)
            return nullptr;
        for (const auto &kv : obj_) {
            if (kv.first == key)
                return &kv.second;
        }
        return nullptr;
    }

    /** Member lookup; fatal() when missing. */
    const Value &
    at(const std::string &key) const
    {
        const Value *v = find(key);
        if (!v)
            fatal("json: missing key '", key, "'");
        return *v;
    }

    // ---- serialization ---------------------------------------------------

    /**
     * Serialize. @p indent > 0 pretty-prints; the output for a given
     * Value is byte-identical across runs and platforms.
     */
    void
    write(std::ostream &os, int indent = 2, int depth = 0) const
    {
        switch (kind_) {
          case Kind::Null:
            os << "null";
            break;
          case Kind::Bool:
            os << (bool_ ? "true" : "false");
            break;
          case Kind::Int:
            os << int_;
            break;
          case Kind::Double: {
            char buf[64];
            auto res = std::to_chars(buf, buf + sizeof(buf), double_);
            os.write(buf, res.ptr - buf);
            break;
          }
          case Kind::String:
            writeString(os, str_);
            break;
          case Kind::Array: {
            if (arr_.empty()) {
                os << "[]";
                break;
            }
            os << '[';
            for (std::size_t i = 0; i < arr_.size(); ++i) {
                if (i)
                    os << ',';
                newline(os, indent, depth + 1);
                arr_[i].write(os, indent, depth + 1);
            }
            newline(os, indent, depth);
            os << ']';
            break;
          }
          case Kind::Object: {
            if (obj_.empty()) {
                os << "{}";
                break;
            }
            os << '{';
            for (std::size_t i = 0; i < obj_.size(); ++i) {
                if (i)
                    os << ',';
                newline(os, indent, depth + 1);
                writeString(os, obj_[i].first);
                os << (indent > 0 ? ": " : ":");
                obj_[i].second.write(os, indent, depth + 1);
            }
            newline(os, indent, depth);
            os << '}';
            break;
          }
        }
    }

    std::string
    toString(int indent = 2) const
    {
        std::ostringstream os;
        write(os, indent);
        if (indent > 0)
            os << '\n';
        return os.str();
    }

  private:
    static void
    newline(std::ostream &os, int indent, int depth)
    {
        if (indent <= 0)
            return;
        os << '\n' << std::string(static_cast<std::size_t>(indent * depth), ' ');
    }

    static void
    writeString(std::ostream &os, const std::string &s)
    {
        os << '"';
        for (char c : s) {
            switch (c) {
              case '"':
                os << "\\\"";
                break;
              case '\\':
                os << "\\\\";
                break;
              case '\n':
                os << "\\n";
                break;
              case '\t':
                os << "\\t";
                break;
              case '\r':
                os << "\\r";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
            }
        }
        os << '"';
    }

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

// ---- parsing -------------------------------------------------------------

namespace detail
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parse()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        fatal("json parse error at byte ", pos_, ": ", why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLit(const char *lit)
    {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        const char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return Value(parseString());
          case 't':
            if (consumeLit("true"))
                return Value(true);
            fail("bad literal");
          case 'f':
            if (consumeLit("false"))
                return Value(false);
            fail("bad literal");
          case 'n':
            if (consumeLit("null"))
                return Value(nullptr);
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Value obj = Value::object();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            obj.set(key, parseValue());
            const char c = peek();
            ++pos_;
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Value arr = Value::array();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("bad \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Only BMP code points below 0x80 appear in our own
                // output; encode the rest as UTF-8 for completeness.
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape");
            }
        }
        fail("unterminated string");
    }

    Value
    parseNumber()
    {
        skipWs();
        const std::size_t start = pos_;
        bool isDouble = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '.' || c == 'e' || c == 'E')
                isDouble = true;
            else if (!(c == '-' || c == '+' || (c >= '0' && c <= '9')))
                break;
            ++pos_;
        }
        const std::string tok = text_.substr(start, pos_ - start);
        if (tok.empty())
            fail("expected a value");
        if (isDouble) {
            double d = 0;
            auto res =
                std::from_chars(tok.data(), tok.data() + tok.size(), d);
            if (res.ec != std::errc())
                fail("bad number '" + tok + "'");
            return Value(d);
        }
        std::int64_t i = 0;
        auto res = std::from_chars(tok.data(), tok.data() + tok.size(), i);
        if (res.ec != std::errc())
            fail("bad number '" + tok + "'");
        return Value(i);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace detail

/** Parse a JSON document; fatal() on malformed input. */
inline Value
parse(const std::string &text)
{
    return detail::Parser(text).parse();
}

/** True when @p schema ends in a "-v<digits>" version tag. */
inline bool
schemaIsVersioned(const std::string &schema)
{
    const std::size_t pos = schema.rfind("-v");
    if (pos == std::string::npos || pos + 2 >= schema.size())
        return false;
    for (std::size_t i = pos + 2; i < schema.size(); ++i) {
        if (schema[i] < '0' || schema[i] > '9')
            return false;
    }
    return true;
}

/**
 * The shared header every tool's machine-readable report starts from:
 * an object carrying "schema" and "toolVersion" as its first keys (the
 * writer preserves insertion order). Asserts the schema identifier is
 * versioned ("...-v<N>") so consumers can dispatch on breaking layout
 * changes.
 */
inline Value
toolReport(const std::string &schema, const std::string &tool_version)
{
    LIQUID_ASSERT(schemaIsVersioned(schema), "tool schema '", schema,
                  "' must carry a -v<N> version tag");
    Value v = Value::object();
    v.set("schema", schema);
    v.set("toolVersion", tool_version);
    return v;
}

} // namespace liquid::json

#endif // LIQUID_COMMON_JSON_HH
