/**
 * @file
 * Minimal logging / fatal-error helpers in the spirit of gem5's
 * base/logging.hh. panic() signals a simulator bug; fatal() signals a
 * user/configuration error. Both throw so tests can assert on them.
 */

#ifndef LIQUID_COMMON_LOGGING_HH
#define LIQUID_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace liquid
{

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user asked for something unsupported. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

} // namespace detail

/**
 * Abort with an internal-error diagnostic. Use when the condition can
 * only arise from a simulator bug.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/**
 * Abort with a user-error diagnostic. Use for bad configurations or
 * unsupported inputs.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/** panic() unless the condition holds. */
#define LIQUID_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::liquid::panic("assertion failed: ", #cond, " ", __FILE__,     \
                            ":", __LINE__, " ", ##__VA_ARGS__);             \
        }                                                                   \
    } while (0)

} // namespace liquid

#endif // LIQUID_COMMON_LOGGING_HH
