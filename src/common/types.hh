/**
 * @file
 * Fundamental scalar types used throughout the Liquid SIMD simulator.
 */

#ifndef LIQUID_COMMON_TYPES_HH
#define LIQUID_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace liquid
{

/** Byte address into simulated memory. */
using Addr = std::uint32_t;

/** Simulated clock cycle count. */
using Cycles = std::uint64_t;

/** Raw 32-bit register / memory word, interpreted per opcode. */
using Word = std::uint32_t;

/** Signed view of a register word. */
using SWord = std::int32_t;

/** Invalid / "no address" sentinel. */
inline constexpr Addr invalidAddr = 0xFFFFFFFFu;

} // namespace liquid

#endif // LIQUID_COMMON_TYPES_HH
