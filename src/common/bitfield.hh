/**
 * @file
 * Bit-manipulation helpers used by the encoder, caches and the
 * translator's hardware cost model.
 */

#ifndef LIQUID_COMMON_BITFIELD_HH
#define LIQUID_COMMON_BITFIELD_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace liquid
{

/** Extract bits [lo, hi] (inclusive) of a word. */
constexpr std::uint32_t
bits(std::uint32_t value, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const std::uint32_t mask =
        width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u);
    return (value >> lo) & mask;
}

/** Insert @p field into bits [lo, hi] of @p base. */
constexpr std::uint32_t
insertBits(std::uint32_t base, unsigned hi, unsigned lo, std::uint32_t field)
{
    const unsigned width = hi - lo + 1;
    const std::uint32_t mask =
        width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u);
    return (base & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low @p width bits of @p value. */
constexpr std::int32_t
sext(std::uint32_t value, unsigned width)
{
    const unsigned shift = 32 - width;
    return static_cast<std::int32_t>(value << shift) >>
           static_cast<std::int32_t>(shift);
}

/** True if @p value is a power of two (and nonzero). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2i(std::uint64_t value)
{
    LIQUID_ASSERT(isPowerOf2(value));
    return static_cast<unsigned>(std::countr_zero(value));
}

/** Round @p value up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    LIQUID_ASSERT(isPowerOf2(align));
    return (value + align - 1) & ~(align - 1);
}

/** Ceiling division for unsigned values. */
constexpr std::uint64_t
divCeil(std::uint64_t num, std::uint64_t den)
{
    return (num + den - 1) / den;
}

/** Reinterpret a float as its raw 32-bit pattern. */
inline Word
floatToBits(float f)
{
    return std::bit_cast<Word>(f);
}

/** Reinterpret a 32-bit pattern as a float. */
inline float
bitsToFloat(Word w)
{
    return std::bit_cast<float>(w);
}

} // namespace liquid

#endif // LIQUID_COMMON_BITFIELD_HH
