/**
 * @file
 * Deterministic pseudo-random number generator (xorshift128+). Every
 * workload and property test seeds one of these explicitly so runs are
 * bit-reproducible across platforms, unlike std::default_random_engine.
 */

#ifndef LIQUID_COMMON_RANDOM_HH
#define LIQUID_COMMON_RANDOM_HH

#include <cstdint>

namespace liquid
{

/** Small, fast, deterministic RNG. Not for cryptography. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 to fill the state from a single seed.
        auto next = [&seed]() {
            seed += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            return z ^ (z >> 31);
        };
        s0_ = next();
        s1_ = next();
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next64()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Next 32-bit value. */
    std::uint32_t next32() { return static_cast<std::uint32_t>(next64()); }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        const std::uint64_t span =
            static_cast<std::uint64_t>(hi - lo) + 1ull;
        return lo + static_cast<std::int64_t>(next64() % span);
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(next64() >> 40) /
               static_cast<float>(1ull << 24);
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return nextFloat() < p; }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace liquid

#endif // LIQUID_COMMON_RANDOM_HH
